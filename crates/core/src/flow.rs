//! End-to-end test flow: stimulus → CUT response → Lissajous → zone codes →
//! signature → NDF → PASS/FAIL.
//!
//! This is the orchestration layer behind the paper's experiments: Fig. 6/7
//! (golden vs defective signatures), Fig. 8 (NDF vs `f0` deviation sweep) and
//! the noise-robustness claim of §IV-C.

use cut_filters::{BiquadParams, Fault};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sim_signal::{MultitoneSpec, NoiseModel, Waveform};
use xy_monitor::ZonePartition;

use crate::capture::{capture_signature, CaptureClock, PointEncoder};
use crate::decision::{AcceptanceBand, ScreeningStats, TestOutcome};
use crate::error::{DsigError, Result};
use crate::ndf::{ndf, peak_hamming_distance};
use crate::retest::{retest_seed, RetestPolicy, RetestVerdict};
use crate::signature::Signature;

/// Everything needed to observe one CUT instance and capture its signature.
#[derive(Debug, Clone)]
pub struct TestSetup {
    /// The multitone stimulus applied to the CUT.
    pub stimulus: MultitoneSpec,
    /// The zone partition (bank of monitors) observing the Lissajous plane.
    pub partition: ZonePartition,
    /// The capture clock; `None` captures exact dwell times.
    pub clock: Option<CaptureClock>,
    /// Sample rate used to discretize the observed signals, hertz.
    pub sample_rate: f64,
    /// Measurement noise added to both observed signals.
    pub noise: NoiseModel,
    /// Minimum zone dwell the transition detector can register, seconds
    /// (shorter zone visits — typically noise chatter at a boundary — are
    /// absorbed by the surrounding zone). Set to 0 to disable.
    pub transition_min_dwell: f64,
    /// Input bandwidth of the observation front-end (the monitors), hertz.
    /// Both observed signals are low-pass filtered at this cutoff, which
    /// attenuates out-of-band measurement noise while leaving the multitone
    /// signal (tens of kilohertz) untouched. `None` disables the filter.
    pub monitor_bandwidth_hz: Option<f64>,
}

impl TestSetup {
    /// The paper's experimental setup: the default multitone stimulus, the
    /// six Table I monitors, the 10 MHz / 12-bit capture clock and no noise.
    ///
    /// # Errors
    /// Propagates monitor construction errors (none occur for the published values).
    pub fn paper_default() -> Result<Self> {
        Ok(TestSetup {
            stimulus: MultitoneSpec::paper_default(),
            partition: ZonePartition::paper_default()?,
            clock: Some(CaptureClock::paper_default()),
            sample_rate: 5e6,
            noise: NoiseModel::none(),
            transition_min_dwell: 2e-6,
            monitor_bandwidth_hz: Some(300e3),
        })
    }

    /// Returns a copy with the given measurement-noise model.
    pub fn with_noise(mut self, noise: NoiseModel) -> Self {
        self.noise = noise;
        self
    }

    /// Returns a copy with the given observation sample rate.
    ///
    /// # Errors
    /// Returns [`DsigError::InvalidConfig`] for a rate that does not resolve
    /// the stimulus (fewer than 50 samples per fundamental period).
    pub fn with_sample_rate(mut self, sample_rate: f64) -> Result<Self> {
        if sample_rate * self.stimulus.period() < 50.0 {
            return Err(DsigError::InvalidConfig(format!(
                "sample rate {sample_rate} Hz resolves fewer than 50 points per period"
            )));
        }
        self.sample_rate = sample_rate;
        Ok(self)
    }

    /// Observes one CUT instance: returns the `(x(t), y(t))` waveform pair
    /// over one Lissajous period, with measurement noise applied.
    ///
    /// `noise_seed` controls the (deterministic) noise realisation so that
    /// repeated measurements of different devices are independent.
    pub fn observe(&self, cut: &BiquadParams, noise_seed: u64) -> (Waveform, Waveform) {
        let x = self.stimulus.sample(1, self.sample_rate);
        let y = cut.steady_state_response(&self.stimulus, 1, self.sample_rate);
        let mut x_obs = self.noise.apply(&x, noise_seed.wrapping_mul(2));
        let mut y_obs = self.noise.apply(&y, noise_seed.wrapping_mul(2).wrapping_add(1));
        if let Some(bandwidth) = self.monitor_bandwidth_hz {
            x_obs = x_obs.lowpass(bandwidth);
            y_obs = y_obs.lowpass(bandwidth);
        }
        (x_obs, y_obs)
    }

    /// Captures the digital signature of one CUT instance.
    ///
    /// # Errors
    /// Propagates capture errors.
    pub fn signature_of(&self, cut: &BiquadParams, noise_seed: u64) -> Result<Signature> {
        let (x, y) = self.observe(cut, noise_seed);
        let raw = capture_signature(&self.partition, &x, &y, self.clock.as_ref())?;
        Ok(raw.deglitched(self.transition_min_dwell))
    }

    /// Captures the signatures of a batch of devices sharing this setup
    /// through the shared-stimulus fast path — bit-identical to calling
    /// [`TestSetup::signature_of`] per device, at a fraction of the cost.
    ///
    /// `shared` must come from [`crate::batch::StimulusBank::shared_for`]
    /// (or [`crate::batch::SharedStimulus::new`]) with this setup.
    ///
    /// # Errors
    /// Propagates [`crate::batch::capture_signatures_batch`] errors.
    pub fn signatures_of_batch(
        &self,
        shared: &crate::batch::SharedStimulus,
        devices: &[crate::batch::BatchDevice],
    ) -> Result<Vec<Signature>> {
        crate::batch::capture_signatures_batch(self, shared, devices)
    }

    /// Captures `repeats` independent measurements of **one** CUT instance,
    /// synthesizing the stimulus and the device response once and re-drawing
    /// only the measurement noise per repeat (seeds `base_seed`,
    /// `base_seed + 1`, …) — bit-identical to calling
    /// [`TestSetup::signature_of`] once per repeat with those seeds, because
    /// the synthesized waveforms do not depend on the noise realisation.
    ///
    /// This is the averaged-measurement fast path behind
    /// [`TestFlow::evaluate_averaged`]: the per-repeat cost drops to noise
    /// application, front-end filtering and capture. Without a noise model
    /// every repeat observes identical samples, so the signature is captured
    /// once and shared.
    ///
    /// # Errors
    /// Propagates capture errors.
    pub fn signatures_of_repeats(&self, cut: &BiquadParams, repeats: usize, base_seed: u64) -> Result<Vec<Signature>> {
        let x = self.stimulus.sample(1, self.sample_rate);
        let y = cut.steady_state_response(&self.stimulus, 1, self.sample_rate);
        let capture_one = |x_obs: Waveform, y_obs: Waveform| -> Result<Signature> {
            let (mut x_obs, mut y_obs) = (x_obs, y_obs);
            if let Some(bandwidth) = self.monitor_bandwidth_hz {
                x_obs = x_obs.lowpass(bandwidth);
                y_obs = y_obs.lowpass(bandwidth);
            }
            let raw = capture_signature(&self.partition, &x_obs, &y_obs, self.clock.as_ref())?;
            Ok(raw.deglitched(self.transition_min_dwell))
        };
        if self.noise.is_none() {
            let signature = capture_one(x, y)?;
            return Ok(vec![signature; repeats]);
        }
        (0..repeats)
            .map(|i| {
                let seed = base_seed.wrapping_add(i as u64);
                capture_one(
                    self.noise.apply(&x, seed.wrapping_mul(2)),
                    self.noise.apply(&y, seed.wrapping_mul(2).wrapping_add(1)),
                )
            })
            .collect()
    }

    /// Captures a signature with an alternative encoder (used by the
    /// straight-line zoning baseline).
    ///
    /// # Errors
    /// Propagates capture errors.
    pub fn signature_with_encoder(
        &self,
        encoder: &dyn PointEncoder,
        cut: &BiquadParams,
        noise_seed: u64,
    ) -> Result<Signature> {
        let (x, y) = self.observe(cut, noise_seed);
        let raw = capture_signature(encoder, &x, &y, self.clock.as_ref())?;
        Ok(raw.deglitched(self.transition_min_dwell))
    }
}

/// The result of evaluating one CUT instance against the golden signature.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NdfReport {
    /// The normalized discrepancy factor (Eq. 2).
    pub ndf: f64,
    /// Peak instantaneous Hamming distance over the period.
    pub peak_hamming: u32,
    /// Number of zone traversals in the observed signature.
    pub observed_zones: usize,
}

/// The result of evaluating one CUT instance under a [`RetestPolicy`]
/// (see [`TestFlow::evaluate_with_retest`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetestNdfReport {
    /// The deciding measurements: the final (averaged, for retested devices)
    /// NDF with the peak Hamming distance and zone count folded over the
    /// initial capture and every consumed repeat.
    pub report: NdfReport,
    /// The single-shot NDF of the initial capture.
    pub initial_ndf: f64,
    /// The escalation walk's verdict (marginality, flip, repeats spent).
    pub verdict: RetestVerdict,
}

/// One point of the Fig. 8 sweep: an injected `f0` deviation and the NDF it produces.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Injected natural-frequency deviation, percent.
    pub deviation_pct: f64,
    /// Measured NDF.
    pub ndf: f64,
}

/// A calibrated test flow: a golden signature plus the setup that produced it.
///
/// # Examples
///
/// Calibrate an acceptance band from a deviation sweep, then screen devices:
///
/// ```
/// use cut_filters::BiquadParams;
/// use dsig_core::{TestFlow, TestOutcome, TestSetup};
///
/// # fn main() -> Result<(), dsig_core::DsigError> {
/// let setup = TestSetup::paper_default()?.with_sample_rate(1e6)?;
/// let flow = TestFlow::new(setup, BiquadParams::paper_default())?;
/// // Devices within ±3% f0 deviation must pass.
/// let deviations: Vec<f64> = (-10..=10).map(f64::from).collect();
/// let band = flow.calibrate_band(&deviations, 3.0)?;
/// let good = flow.evaluate(&BiquadParams::paper_default().with_f0_shift_pct(1.0), 1)?;
/// let bad = flow.evaluate(&BiquadParams::paper_default().with_f0_shift_pct(9.0), 2)?;
/// assert_eq!(band.decide(good.ndf), TestOutcome::Pass);
/// assert_eq!(band.decide(bad.ndf), TestOutcome::Fail);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TestFlow {
    setup: TestSetup,
    reference: BiquadParams,
    golden: Signature,
}

impl TestFlow {
    /// Builds the flow by capturing the golden signature of the reference
    /// (nominal) CUT without measurement noise — the golden signature is a
    /// characterization-time artifact, not a production measurement.
    ///
    /// # Errors
    /// Propagates capture errors.
    pub fn new(setup: TestSetup, reference: BiquadParams) -> Result<Self> {
        let noiseless = TestSetup {
            noise: NoiseModel::none(),
            ..setup.clone()
        };
        let golden = noiseless.signature_of(&reference, 0)?;
        Ok(TestFlow {
            setup,
            reference,
            golden,
        })
    }

    /// The golden signature.
    pub fn golden(&self) -> &Signature {
        &self.golden
    }

    /// The reference (nominal) CUT parameters.
    pub fn reference(&self) -> &BiquadParams {
        &self.reference
    }

    /// The observation setup.
    pub fn setup(&self) -> &TestSetup {
        &self.setup
    }

    /// Evaluates one CUT instance: captures its signature and compares it to
    /// the golden one.
    ///
    /// # Errors
    /// Propagates capture and comparison errors.
    pub fn evaluate(&self, cut: &BiquadParams, noise_seed: u64) -> Result<NdfReport> {
        let observed = self.setup.signature_of(cut, noise_seed)?;
        Ok(NdfReport {
            ndf: ndf(&self.golden, &observed)?,
            peak_hamming: peak_hamming_distance(&self.golden, &observed)?,
            observed_zones: observed.len(),
        })
    }

    /// Evaluates a batch of CUT instances against the golden signature
    /// through the shared-stimulus fast path, one [`NdfReport`] per device in
    /// input order. Bit-identical to calling [`TestFlow::evaluate`] per
    /// device.
    ///
    /// # Errors
    /// Propagates batched-capture and comparison errors.
    ///
    /// # Examples
    ///
    /// ```
    /// use cut_filters::BiquadParams;
    /// use dsig_core::{BatchDevice, StimulusBank, TestFlow, TestSetup};
    ///
    /// # fn main() -> Result<(), dsig_core::DsigError> {
    /// let setup = TestSetup::paper_default()?.with_sample_rate(1e6)?;
    /// let flow = TestFlow::new(setup, BiquadParams::paper_default())?;
    /// let bank = StimulusBank::new();
    /// let shared = bank.shared_for(flow.setup())?;
    ///
    /// let lot = [
    ///     BatchDevice::new(BiquadParams::paper_default(), 1),
    ///     BatchDevice::new(BiquadParams::paper_default().with_f0_shift_pct(10.0), 2),
    /// ];
    /// let reports = flow.evaluate_batch(&shared, &lot)?;
    /// assert_eq!(reports[0].ndf, 0.0);
    /// assert!(reports[1].ndf > 0.0);
    /// // Bit-identical to the per-device path.
    /// assert_eq!(reports[1], flow.evaluate(&lot[1].cut, lot[1].noise_seed)?);
    /// # Ok(())
    /// # }
    /// ```
    pub fn evaluate_batch(
        &self,
        shared: &crate::batch::SharedStimulus,
        devices: &[crate::batch::BatchDevice],
    ) -> Result<Vec<NdfReport>> {
        let signatures = self.setup.signatures_of_batch(shared, devices)?;
        signatures
            .iter()
            .map(|observed| {
                Ok(NdfReport {
                    ndf: ndf(&self.golden, observed)?,
                    peak_hamming: peak_hamming_distance(&self.golden, observed)?,
                    observed_zones: observed.len(),
                })
            })
            .collect()
    }

    /// Evaluates one CUT instance as the average over several independent
    /// measurements (noise realisations) — the standard way to push the
    /// detection limit below the single-shot noise floor.
    ///
    /// The stimulus and the device response are synthesized **once** for all
    /// repeats through [`TestSetup::signatures_of_repeats`] (only the noise
    /// realisation differs between repeats), so the per-repeat cost is noise
    /// application, filtering and capture — bit-identical to evaluating each
    /// repeat independently.
    ///
    /// # Errors
    /// Propagates capture and comparison errors; `repeats` must be non-zero.
    pub fn evaluate_averaged(&self, cut: &BiquadParams, repeats: usize, base_seed: u64) -> Result<NdfReport> {
        if repeats == 0 {
            return Err(DsigError::InvalidConfig(
                "at least one measurement repeat is required".into(),
            ));
        }
        let mut ndf_sum = 0.0;
        let mut peak = 0;
        let mut zones = 0;
        if self.setup.noise.is_none() {
            // Noiseless repeats observe identical samples: capture and score
            // once, then fold the single report through the same per-repeat
            // sum the general path uses (so the rounded average is unchanged).
            let report = self.evaluate(cut, base_seed)?;
            for _ in 0..repeats {
                ndf_sum += report.ndf;
                peak = peak.max(report.peak_hamming);
                zones = zones.max(report.observed_zones);
            }
        } else {
            for observed in self.setup.signatures_of_repeats(cut, repeats, base_seed)? {
                ndf_sum += ndf(&self.golden, &observed)?;
                peak = peak.max(peak_hamming_distance(&self.golden, &observed)?);
                zones = zones.max(observed.len());
            }
        }
        Ok(NdfReport {
            ndf: ndf_sum / repeats as f64,
            peak_hamming: peak,
            observed_zones: zones,
        })
    }

    /// Evaluates one CUT instance under an adaptive retest policy: a single
    /// capture decides non-marginal devices; a device whose NDF lands inside
    /// the policy's guard band around `band.ndf_threshold` is re-measured
    /// with averaged repeats (captured through
    /// [`TestSetup::signatures_of_repeats`], seeds derived by
    /// [`crate::retest_seed`]) and the escalation walk of
    /// [`RetestPolicy::escalate`] decides — each step's averaged NDF is
    /// bit-identical to [`TestFlow::evaluate_averaged`] over that many
    /// repeats.
    ///
    /// # Errors
    /// Propagates capture and comparison errors.
    ///
    /// # Examples
    ///
    /// ```
    /// use cut_filters::BiquadParams;
    /// use dsig_core::{AcceptanceBand, RetestPolicy, TestFlow, TestSetup};
    /// use sim_signal::NoiseModel;
    ///
    /// # fn main() -> Result<(), dsig_core::DsigError> {
    /// let setup = TestSetup::paper_default()?
    ///     .with_sample_rate(1e6)?
    ///     .with_noise(NoiseModel::paper_default());
    /// let flow = TestFlow::new(setup, BiquadParams::paper_default())?;
    /// let band = AcceptanceBand::new(0.03)?;
    /// let policy = RetestPolicy::new(0.01, vec![4, 16])?;
    /// // A grossly deviated device is decided by its single capture alone.
    /// let gross = BiquadParams::paper_default().with_f0_shift_pct(15.0);
    /// let report = flow.evaluate_with_retest(&gross, &band, &policy, 7)?;
    /// assert!(!report.verdict.marginal);
    /// assert_eq!(report.verdict.repeats_used, 0);
    /// # Ok(())
    /// # }
    /// ```
    pub fn evaluate_with_retest(
        &self,
        cut: &BiquadParams,
        band: &AcceptanceBand,
        policy: &RetestPolicy,
        noise_seed: u64,
    ) -> Result<RetestNdfReport> {
        let initial = self.evaluate(cut, noise_seed)?;
        if !policy.is_marginal(band, initial.ndf) {
            return Ok(RetestNdfReport {
                report: initial,
                initial_ndf: initial.ndf,
                verdict: policy.escalate(band, initial.ndf, &[]),
            });
        }
        let repeats = self
            .setup
            .signatures_of_repeats(cut, policy.repeat_cap() as usize, retest_seed(noise_seed))?;
        let mut repeat_ndfs = Vec::with_capacity(repeats.len());
        let mut repeat_peaks = Vec::with_capacity(repeats.len());
        let mut repeat_zones = Vec::with_capacity(repeats.len());
        for observed in &repeats {
            repeat_ndfs.push(ndf(&self.golden, observed)?);
            repeat_peaks.push(peak_hamming_distance(&self.golden, observed)?);
            repeat_zones.push(observed.len());
        }
        let verdict = policy.escalate(band, initial.ndf, &repeat_ndfs);
        let used = verdict.repeats_used as usize;
        Ok(RetestNdfReport {
            report: NdfReport {
                ndf: verdict.ndf,
                peak_hamming: repeat_peaks[..used]
                    .iter()
                    .fold(initial.peak_hamming, |peak, &p| peak.max(p)),
                observed_zones: repeat_zones[..used]
                    .iter()
                    .fold(initial.observed_zones, |zones, &z| zones.max(z)),
            },
            initial_ndf: initial.ndf,
            verdict,
        })
    }

    /// Characterizes the measurement-noise floor: the mean and maximum
    /// averaged NDF of the *nominal* reference device over `repeats`
    /// independent measurement groups.
    ///
    /// # Errors
    /// Propagates evaluation errors; `repeats` must be non-zero.
    pub fn noise_floor(&self, repeats: usize, group_size: usize, base_seed: u64) -> Result<(f64, f64)> {
        if repeats == 0 {
            return Err(DsigError::InvalidConfig("at least one repeat is required".into()));
        }
        let mut sum = 0.0;
        let mut max = 0.0_f64;
        for i in 0..repeats {
            let report =
                self.evaluate_averaged(&self.reference, group_size, base_seed.wrapping_add((i * 1000) as u64))?;
            sum += report.ndf;
            max = max.max(report.ndf);
        }
        Ok((sum / repeats as f64, max))
    }

    /// Evaluates a CUT produced by injecting a fault into the reference.
    ///
    /// # Errors
    /// Propagates fault application and evaluation errors.
    pub fn evaluate_fault(&self, fault: &Fault, noise_seed: u64) -> Result<NdfReport> {
        let cut = fault.apply_to_params(&self.reference)?;
        self.evaluate(&cut, noise_seed)
    }

    /// Runs the Fig. 8 sweep: NDF as a function of the `f0` deviation.
    ///
    /// # Errors
    /// Propagates evaluation errors.
    pub fn sweep_f0(&self, deviations_pct: &[f64]) -> Result<Vec<SweepPoint>> {
        deviations_pct
            .iter()
            .enumerate()
            .map(|(i, &dev)| {
                let cut = self.reference.with_f0_shift_pct(dev);
                let report = self.evaluate(&cut, 1000 + i as u64)?;
                Ok(SweepPoint {
                    deviation_pct: dev,
                    ndf: report.ndf,
                })
            })
            .collect()
    }

    /// Calibrates an acceptance band from a Fig. 8 style sweep so that every
    /// deviation within `tolerance_pct` passes.
    ///
    /// # Errors
    /// Propagates sweep and calibration errors.
    pub fn calibrate_band(&self, deviations_pct: &[f64], tolerance_pct: f64) -> Result<AcceptanceBand> {
        let sweep = self.sweep_f0(deviations_pct)?;
        let pairs: Vec<(f64, f64)> = sweep.iter().map(|p| (p.deviation_pct, p.ndf)).collect();
        AcceptanceBand::calibrate(&pairs, tolerance_pct)
    }

    /// Screens a synthetic production population whose `f0` deviations are
    /// Gaussian with the given sigma (percent). A device is *truly good* when
    /// its deviation is within `tolerance_pct`; the signature test decides
    /// PASS/FAIL through the supplied acceptance band.
    ///
    /// # Errors
    /// Propagates evaluation errors.
    pub fn screen_population(
        &self,
        devices: usize,
        sigma_pct: f64,
        tolerance_pct: f64,
        band: &AcceptanceBand,
        seed: u64,
    ) -> Result<ScreeningStats> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut stats = ScreeningStats::default();
        for i in 0..devices {
            let deviation = sigma_pct * sim_signal::standard_normal(&mut rng);
            let cut = self.reference.with_f0_shift_pct(deviation);
            let report = self.evaluate(&cut, seed.wrapping_add(i as u64))?;
            let outcome = band.decide(report.ndf);
            stats.record(deviation.abs() <= tolerance_pct, outcome);
        }
        Ok(stats)
    }

    /// Trains an alternate-test style estimator of the f0 deviation from the
    /// per-zone dwell-time features of the signature (see
    /// [`crate::regression`]). The characterization sweep plays the role of
    /// the regression training set of the paper's reference \[14\].
    ///
    /// # Errors
    /// Propagates evaluation and fitting errors.
    pub fn train_f0_estimator(&self, deviations_pct: &[f64]) -> Result<crate::regression::SignatureRegressor> {
        let mut samples = Vec::with_capacity(deviations_pct.len());
        for (i, &dev) in deviations_pct.iter().enumerate() {
            let cut = self.reference.with_f0_shift_pct(dev);
            let signature = self.setup.signature_of(&cut, 5000 + i as u64)?;
            samples.push((crate::regression::dwell_features(&self.golden, &signature), dev));
        }
        crate::regression::SignatureRegressor::fit(&samples, 1e-6)
    }

    /// Estimates the f0 deviation (in percent) of one CUT instance with a
    /// trained estimator.
    ///
    /// # Errors
    /// Propagates capture and prediction errors.
    pub fn estimate_f0_deviation(
        &self,
        estimator: &crate::regression::SignatureRegressor,
        cut: &BiquadParams,
        noise_seed: u64,
    ) -> Result<f64> {
        let signature = self.setup.signature_of(cut, noise_seed)?;
        estimator.predict(&crate::regression::dwell_features(&self.golden, &signature))
    }

    /// Finds the smallest positive `f0` deviation (in percent, searched on a
    /// 0.25 % grid up to `max_pct`) whose averaged NDF over `repeats`
    /// measurements exceeds the given threshold — the "minimum detectable
    /// deviation" of §IV-C.
    ///
    /// # Errors
    /// Propagates evaluation errors. Returns `Ok(None)` if no deviation up to
    /// `max_pct` is detectable.
    pub fn minimum_detectable_deviation(
        &self,
        band: &AcceptanceBand,
        max_pct: f64,
        repeats: usize,
        noise_seed: u64,
    ) -> Result<Option<f64>> {
        let mut dev = 0.25;
        while dev <= max_pct + 1e-9 {
            let cut = self.reference.with_f0_shift_pct(dev);
            let report = self.evaluate_averaged(&cut, repeats, noise_seed)?;
            if band.decide(report.ndf) == TestOutcome::Fail {
                return Ok(Some(dev));
            }
            dev += 0.25;
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow() -> TestFlow {
        let setup = TestSetup::paper_default().unwrap().with_sample_rate(1e6).unwrap();
        TestFlow::new(setup, BiquadParams::paper_default()).unwrap()
    }

    #[test]
    fn golden_signature_is_rich_and_periodic() {
        let f = flow();
        let golden = f.golden();
        assert!(golden.len() >= 6, "golden signature has only {} zones", golden.len());
        assert!((golden.total_duration() - 200e-6).abs() < 2e-6);
        assert!(golden.distinct_zones() >= 4);
    }

    #[test]
    fn nominal_device_has_zero_ndf() {
        let f = flow();
        let report = f.evaluate(&BiquadParams::paper_default(), 5).unwrap();
        assert_eq!(report.ndf, 0.0);
        assert_eq!(report.peak_hamming, 0);
    }

    #[test]
    fn f0_shift_produces_nonzero_ndf_that_grows_with_deviation() {
        let f = flow();
        let small = f.evaluate_fault(&Fault::F0ShiftPct(2.0), 7).unwrap();
        let large = f.evaluate_fault(&Fault::F0ShiftPct(10.0), 7).unwrap();
        assert!(small.ndf > 0.0, "2% shift NDF {}", small.ndf);
        assert!(large.ndf > small.ndf, "NDF must grow: {} vs {}", small.ndf, large.ndf);
    }

    #[test]
    fn ndf_is_roughly_symmetric_in_sign() {
        let f = flow();
        let plus = f.evaluate_fault(&Fault::F0ShiftPct(10.0), 11).unwrap();
        let minus = f.evaluate_fault(&Fault::F0ShiftPct(-10.0), 11).unwrap();
        let ratio = plus.ndf / minus.ndf;
        assert!(
            ratio > 0.4 && ratio < 2.5,
            "asymmetric NDF: +10% {} vs -10% {}",
            plus.ndf,
            minus.ndf
        );
    }

    #[test]
    fn sweep_produces_one_point_per_deviation() {
        let f = flow();
        let sweep = f.sweep_f0(&[-10.0, 0.0, 10.0]).unwrap();
        assert_eq!(sweep.len(), 3);
        assert!(sweep[1].ndf <= sweep[0].ndf.min(sweep[2].ndf));
    }

    #[test]
    fn calibrated_band_separates_good_from_bad() {
        let f = flow();
        let devs: Vec<f64> = (-10..=10).map(|d| d as f64).collect();
        let band = f.calibrate_band(&devs, 3.0).unwrap();
        let good = f.evaluate_fault(&Fault::F0ShiftPct(1.0), 3).unwrap();
        let bad = f.evaluate_fault(&Fault::F0ShiftPct(9.0), 3).unwrap();
        assert_eq!(band.decide(good.ndf), TestOutcome::Pass);
        assert_eq!(band.decide(bad.ndf), TestOutcome::Fail);
    }

    #[test]
    fn noise_does_not_hide_large_deviations() {
        let setup = TestSetup::paper_default()
            .unwrap()
            .with_sample_rate(1e6)
            .unwrap()
            .with_noise(NoiseModel::paper_default());
        let f = TestFlow::new(setup, BiquadParams::paper_default()).unwrap();
        let report = f.evaluate_fault(&Fault::F0ShiftPct(10.0), 23).unwrap();
        assert!(report.ndf > 0.02, "noisy 10% shift NDF {}", report.ndf);
    }

    #[test]
    fn averaged_evaluation_is_bit_identical_to_per_repeat_evaluation() {
        // The shared-synthesis fast path must reproduce the old
        // evaluate-per-repeat loop exactly, noisy and noiseless.
        let noisy_setup = TestSetup::paper_default()
            .unwrap()
            .with_sample_rate(1e6)
            .unwrap()
            .with_noise(NoiseModel::paper_default());
        let noisy = TestFlow::new(noisy_setup, BiquadParams::paper_default()).unwrap();
        let quiet = flow();
        for (f, base_seed) in [(&noisy, 40u64), (&quiet, 7u64)] {
            for repeats in [1usize, 3, 8] {
                let cut = BiquadParams::paper_default().with_f0_shift_pct(1.5);
                let fast = f.evaluate_averaged(&cut, repeats, base_seed).unwrap();
                let mut ndf_sum = 0.0;
                let mut peak = 0;
                let mut zones = 0;
                for i in 0..repeats {
                    let report = f.evaluate(&cut, base_seed.wrapping_add(i as u64)).unwrap();
                    ndf_sum += report.ndf;
                    peak = peak.max(report.peak_hamming);
                    zones = zones.max(report.observed_zones);
                }
                assert_eq!(
                    fast.ndf.to_bits(),
                    (ndf_sum / repeats as f64).to_bits(),
                    "repeats {repeats}"
                );
                assert_eq!(fast.peak_hamming, peak);
                assert_eq!(fast.observed_zones, zones);
            }
        }
    }

    #[test]
    fn repeated_signatures_match_the_per_repeat_capture() {
        let setup = TestSetup::paper_default()
            .unwrap()
            .with_sample_rate(1e6)
            .unwrap()
            .with_noise(NoiseModel::paper_default());
        let cut = BiquadParams::paper_default().with_f0_shift_pct(3.0);
        let repeated = setup.signatures_of_repeats(&cut, 4, 31).unwrap();
        assert_eq!(repeated.len(), 4);
        for (i, signature) in repeated.iter().enumerate() {
            assert_eq!(
                *signature,
                setup.signature_of(&cut, 31 + i as u64).unwrap(),
                "repeat {i}"
            );
        }
        // Noiseless: every repeat is the same capture, shared.
        let quiet = TestSetup::paper_default().unwrap().with_sample_rate(1e6).unwrap();
        let repeated = quiet.signatures_of_repeats(&cut, 3, 99).unwrap();
        assert_eq!(repeated[0], quiet.signature_of(&cut, 99).unwrap());
        assert!(repeated.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn retest_averages_are_bit_identical_to_evaluate_averaged() {
        use crate::decision::AcceptanceBand;

        let setup = TestSetup::paper_default()
            .unwrap()
            .with_sample_rate(1e6)
            .unwrap()
            .with_noise(NoiseModel::paper_default());
        let f = TestFlow::new(setup, BiquadParams::paper_default()).unwrap();
        let cut = BiquadParams::paper_default().with_f0_shift_pct(2.5);
        let noise_seed = 11u64;
        let initial = f.evaluate(&cut, noise_seed).unwrap();
        // Center the band on the single-shot NDF so the device is marginal
        // with a wide guard band: the walk must consume the full schedule.
        let band = AcceptanceBand::new(initial.ndf).unwrap();
        let policy = RetestPolicy::new(1.0, vec![3, 7]).unwrap();
        let retested = f.evaluate_with_retest(&cut, &band, &policy, noise_seed).unwrap();
        assert!(retested.verdict.marginal);
        assert_eq!(retested.verdict.repeats_used, 7);
        assert_eq!(retested.initial_ndf.to_bits(), initial.ndf.to_bits());
        // The deciding NDF is exactly evaluate_averaged over the consumed
        // repeats, from the shared retest seed stream.
        let averaged = f.evaluate_averaged(&cut, 7, retest_seed(noise_seed)).unwrap();
        assert_eq!(retested.report.ndf.to_bits(), averaged.ndf.to_bits());
        assert_eq!(
            retested.report.peak_hamming,
            averaged.peak_hamming.max(initial.peak_hamming)
        );
        assert_eq!(
            retested.report.observed_zones,
            averaged.observed_zones.max(initial.observed_zones)
        );
    }

    #[test]
    fn non_marginal_devices_skip_the_retest_capture() {
        use crate::decision::AcceptanceBand;

        let f = flow();
        let band = AcceptanceBand::new(0.03).unwrap();
        let policy = RetestPolicy::new(0.005, vec![4]).unwrap();
        let gross = BiquadParams::paper_default().with_f0_shift_pct(15.0);
        let retested = f.evaluate_with_retest(&gross, &band, &policy, 3).unwrap();
        let single = f.evaluate(&gross, 3).unwrap();
        assert_eq!(retested.report, single);
        assert!(!retested.verdict.marginal);
        assert_eq!(retested.verdict.repeats_used, 0);
        assert_eq!(retested.verdict.outcome, TestOutcome::Fail);
    }

    #[test]
    fn screening_statistics_are_consistent() {
        let f = flow();
        let band = AcceptanceBand::new(0.03).unwrap();
        let stats = f.screen_population(20, 5.0, 5.0, &band, 99).unwrap();
        assert_eq!(stats.total, 20);
        assert_eq!(stats.passed + stats.failed, 20);
        assert_eq!(stats.truly_good + stats.truly_bad, 20);
    }

    #[test]
    fn regression_estimator_recovers_signed_deviation() {
        let f = flow();
        let training: Vec<f64> = (-10..=10).map(|d| d as f64 * 2.0).collect();
        let estimator = f.train_f0_estimator(&training).unwrap();
        for true_dev in [-15.0, -7.0, 0.0, 6.0, 13.0] {
            let cut = BiquadParams::paper_default().with_f0_shift_pct(true_dev);
            let estimated = f.estimate_f0_deviation(&estimator, &cut, 77).unwrap();
            assert!(
                (estimated - true_dev).abs() < 4.0,
                "estimated {estimated}% for a true deviation of {true_dev}%"
            );
        }
    }

    #[test]
    fn with_sample_rate_validation() {
        let setup = TestSetup::paper_default().unwrap();
        assert!(setup.clone().with_sample_rate(1e3).is_err());
        assert!(setup.with_sample_rate(2e6).is_ok());
    }
}
