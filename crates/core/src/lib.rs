//! # dsig-core
//!
//! The digital-signature analog test method of *"Analog Circuit Test Based on
//! a Digital Signature"* (DATE 2010):
//!
//! * [`Signature`] — the sequence of `(zone code, dwell time)` pairs produced
//!   by the asynchronous capture circuit (Eq. 1, Fig. 5);
//! * [`capture_signature`] — the capture model over sampled `x(t)` / `y(t)`
//!   observations, with master-clock quantization ([`CaptureClock`]);
//! * [`ndf()`](fn@ndf) — the normalized discrepancy factor (Eq. 2), the time-weighted
//!   average Hamming distance between observed and golden zone codes;
//! * [`AcceptanceBand`] / [`TestOutcome`] — the PASS/FAIL decision;
//! * [`TestFlow`] — the end-to-end flow (golden generation, CUT evaluation,
//!   Fig. 8 sweeps, population screening, minimum detectable deviation);
//! * [`batch`] — the shared-stimulus batched capture fast path
//!   ([`StimulusBank`], [`capture_signatures_batch`]): per-setup stimulus
//!   and monitor-term caching with bit-identical batched evaluation;
//! * [`retest`] — adaptive retest of marginal NDFs ([`RetestPolicy`]): a
//!   guard band around the acceptance threshold plus a cumulative repeat
//!   schedule, decided by one pure escalation walk shared by the local flow,
//!   the serving shards and the campaign runner;
//! * [`baseline`] — straight-line zoning and raw waveform comparison
//!   baselines used for comparison benches.
//!
//! # Examples
//!
//! ```
//! use cut_filters::{BiquadParams, Fault};
//! use dsig_core::{TestFlow, TestSetup};
//!
//! # fn main() -> Result<(), dsig_core::DsigError> {
//! let setup = TestSetup::paper_default()?.with_sample_rate(1e6)?;
//! let flow = TestFlow::new(setup, BiquadParams::paper_default())?;
//! // A +10% natural-frequency deviation produces a clearly nonzero NDF.
//! let report = flow.evaluate_fault(&Fault::F0ShiftPct(10.0), 42)?;
//! assert!(report.ndf > 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod baseline;
pub mod batch;
pub mod capture;
pub mod decision;
pub mod error;
pub mod flow;
pub mod ndf;
pub mod regression;
pub mod retest;
pub mod signature;
pub mod wire;

pub use baseline::{normalized_output_error, LinearBoundary, LinearZoning};
pub use batch::{capture_signatures_batch, stimulus_key, BatchDevice, SharedStimulus, StimulusBank};
pub use capture::{capture_signature, signature_from_codes, CaptureClock, PointEncoder};
pub use decision::{AcceptanceBand, ScreeningStats, TestOutcome};
pub use error::{DsigError, Result};
pub use flow::{NdfReport, RetestNdfReport, SweepPoint, TestFlow, TestSetup};
pub use ndf::{hamming_chronogram, ndf, peak_hamming_distance, HammingSegment};
pub use regression::{dwell_features, SignatureRegressor};
pub use retest::{retest_seed, RetestPolicy, RetestVerdict};
pub use signature::{Signature, SignatureEntry, ZoneCode};
