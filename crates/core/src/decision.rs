//! PASS/FAIL decision making on top of the NDF (§IV-C).
//!
//! "The test decision is made by previously setting the desired level of
//! tolerance and checking whether the NDF lies in the acceptance or rejection
//! bands."

use crate::error::{DsigError, Result};

/// The outcome of a signature-based test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TestOutcome {
    /// The NDF lies inside the acceptance band: the CUT is considered within
    /// specification.
    Pass,
    /// The NDF exceeds the acceptance band: the CUT is rejected.
    Fail,
}

impl std::fmt::Display for TestOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestOutcome::Pass => write!(f, "PASS"),
            TestOutcome::Fail => write!(f, "FAIL"),
        }
    }
}

/// The acceptance band: CUTs whose NDF does not exceed the threshold pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AcceptanceBand {
    /// Maximum NDF accepted as within specification.
    pub ndf_threshold: f64,
}

impl AcceptanceBand {
    /// Creates an acceptance band with an explicit threshold.
    ///
    /// # Errors
    /// Returns [`DsigError::InvalidConfig`] for a negative or non-finite threshold.
    pub fn new(ndf_threshold: f64) -> Result<Self> {
        if !(ndf_threshold >= 0.0) || !ndf_threshold.is_finite() {
            return Err(DsigError::InvalidConfig(format!(
                "NDF threshold must be non-negative and finite (got {ndf_threshold})"
            )));
        }
        Ok(AcceptanceBand { ndf_threshold })
    }

    /// Decides the outcome for one measured NDF value.
    pub fn decide(&self, ndf: f64) -> TestOutcome {
        if ndf <= self.ndf_threshold {
            TestOutcome::Pass
        } else {
            TestOutcome::Fail
        }
    }

    /// Calibrates the acceptance band from an NDF-versus-deviation sweep
    /// (the Fig. 8 characterization): the threshold is the largest NDF
    /// observed among deviations within `tolerance_pct`, so every
    /// in-tolerance device of the characterization passes.
    ///
    /// # Errors
    /// Returns [`DsigError::InvalidConfig`] if the sweep is empty or contains
    /// no point within the tolerance.
    pub fn calibrate(sweep: &[(f64, f64)], tolerance_pct: f64) -> Result<Self> {
        if sweep.is_empty() {
            return Err(DsigError::InvalidConfig("cannot calibrate from an empty sweep".into()));
        }
        let in_tolerance: Vec<f64> = sweep
            .iter()
            .filter(|(dev, _)| dev.abs() <= tolerance_pct + 1e-12)
            .map(|&(_, ndf)| ndf)
            .collect();
        if in_tolerance.is_empty() {
            return Err(DsigError::InvalidConfig(format!(
                "no sweep point lies within the ±{tolerance_pct}% tolerance"
            )));
        }
        let threshold = in_tolerance.iter().fold(0.0_f64, |m, &v| m.max(v));
        AcceptanceBand::new(threshold)
    }
}

/// Aggregate statistics of screening a population of devices.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ScreeningStats {
    /// Number of devices screened.
    pub total: usize,
    /// Devices that passed the signature test.
    pub passed: usize,
    /// Devices that failed the signature test.
    pub failed: usize,
    /// Devices that are truly within the specification tolerance.
    pub truly_good: usize,
    /// Devices that are truly outside the specification tolerance.
    pub truly_bad: usize,
    /// Out-of-spec devices that the test accepted (test escapes).
    pub escapes: usize,
    /// In-spec devices that the test rejected (yield loss).
    pub false_rejects: usize,
}

impl ScreeningStats {
    /// Records one device result.
    pub fn record(&mut self, truly_good: bool, outcome: TestOutcome) {
        self.total += 1;
        match outcome {
            TestOutcome::Pass => self.passed += 1,
            TestOutcome::Fail => self.failed += 1,
        }
        if truly_good {
            self.truly_good += 1;
            if outcome == TestOutcome::Fail {
                self.false_rejects += 1;
            }
        } else {
            self.truly_bad += 1;
            if outcome == TestOutcome::Pass {
                self.escapes += 1;
            }
        }
    }

    /// Fraction of devices that passed the test.
    pub fn test_yield(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.passed as f64 / self.total as f64
        }
    }

    /// Fraction of truly out-of-spec devices that escaped detection.
    pub fn escape_rate(&self) -> f64 {
        if self.truly_bad == 0 {
            0.0
        } else {
            self.escapes as f64 / self.truly_bad as f64
        }
    }

    /// Fraction of truly in-spec devices that were rejected.
    pub fn false_reject_rate(&self) -> f64 {
        if self.truly_good == 0 {
            0.0
        } else {
            self.false_rejects as f64 / self.truly_good as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn band_validation_and_decision() {
        assert!(AcceptanceBand::new(-0.1).is_err());
        assert!(AcceptanceBand::new(f64::NAN).is_err());
        let band = AcceptanceBand::new(0.05).unwrap();
        assert_eq!(band.decide(0.02), TestOutcome::Pass);
        assert_eq!(band.decide(0.05), TestOutcome::Pass);
        assert_eq!(band.decide(0.051), TestOutcome::Fail);
        assert_eq!(TestOutcome::Pass.to_string(), "PASS");
        assert_eq!(TestOutcome::Fail.to_string(), "FAIL");
    }

    #[test]
    fn calibration_uses_in_tolerance_maximum() {
        // A synthetic, roughly linear NDF-vs-deviation characteristic.
        let sweep: Vec<(f64, f64)> = (-20..=20).map(|d: i32| (d as f64, 0.01 * d.abs() as f64)).collect();
        let band = AcceptanceBand::calibrate(&sweep, 5.0).unwrap();
        assert!((band.ndf_threshold - 0.05).abs() < 1e-12);
        // Devices beyond the tolerance fail with this threshold.
        assert_eq!(band.decide(0.07), TestOutcome::Fail);
        assert_eq!(band.decide(0.04), TestOutcome::Pass);
    }

    #[test]
    fn calibration_rejects_degenerate_input() {
        assert!(AcceptanceBand::calibrate(&[], 5.0).is_err());
        assert!(AcceptanceBand::calibrate(&[(10.0, 0.1)], 5.0).is_err());
    }

    #[test]
    fn screening_stats_bookkeeping() {
        let mut stats = ScreeningStats::default();
        stats.record(true, TestOutcome::Pass); // correct accept
        stats.record(true, TestOutcome::Fail); // false reject
        stats.record(false, TestOutcome::Fail); // correct reject
        stats.record(false, TestOutcome::Pass); // escape
        assert_eq!(stats.total, 4);
        assert_eq!(stats.passed, 2);
        assert_eq!(stats.failed, 2);
        assert_eq!(stats.escapes, 1);
        assert_eq!(stats.false_rejects, 1);
        assert!((stats.test_yield() - 0.5).abs() < 1e-12);
        assert!((stats.escape_rate() - 0.5).abs() < 1e-12);
        assert!((stats.false_reject_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_rates_are_zero() {
        let stats = ScreeningStats::default();
        assert_eq!(stats.test_yield(), 0.0);
        assert_eq!(stats.escape_rate(), 0.0);
        assert_eq!(stats.false_reject_rate(), 0.0);
    }
}
