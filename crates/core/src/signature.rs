//! Digital signatures: zone codes and (code, duration) sequences.
//!
//! Eq. (1) of the paper defines the CUT signature as the ordered sequence of
//! pairs `(Z_i, Delta_i)`: the zone code traversed by the Lissajous curve and
//! the time spent in that zone.

use std::fmt;

use crate::error::{DsigError, Result};
use crate::wire;

/// An n-bit zone code delivered by the monitor bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct ZoneCode(pub u32);

impl ZoneCode {
    /// The raw code value.
    pub fn value(self) -> u32 {
        self.0
    }

    /// Hamming distance to another zone code (number of differing monitor bits).
    pub fn hamming_distance(self, other: ZoneCode) -> u32 {
        (self.0 ^ other.0).count_ones()
    }

    /// Formats the code as a zero-padded binary string of `bits` bits, the
    /// notation used in Fig. 6 (e.g. `011100`).
    pub fn to_binary_string(self, bits: usize) -> String {
        format!("{:0width$b}", self.0, width = bits)
    }
}

impl From<u32> for ZoneCode {
    fn from(v: u32) -> Self {
        ZoneCode(v)
    }
}

impl fmt::Display for ZoneCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Binary for ZoneCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

/// One `(Z_i, Delta_i)` entry of a signature.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SignatureEntry {
    /// Zone code.
    pub code: ZoneCode,
    /// Time spent in the zone, seconds.
    pub duration: f64,
}

/// A digital signature: the ordered sequence of zone codes traversed by the
/// Lissajous trajectory with the dwell time in each zone (Eq. 1).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Signature {
    entries: Vec<SignatureEntry>,
}

impl Signature {
    /// Creates a signature from raw entries, merging consecutive entries with
    /// identical codes and dropping zero-duration entries.
    ///
    /// # Errors
    /// Returns [`DsigError::InvalidSignature`] if any duration is negative or
    /// not finite.
    pub fn new(entries: Vec<SignatureEntry>) -> Result<Self> {
        for e in &entries {
            if !(e.duration >= 0.0) || !e.duration.is_finite() {
                return Err(DsigError::InvalidSignature(format!(
                    "zone {} has an invalid duration {}",
                    e.code, e.duration
                )));
            }
        }
        let mut merged: Vec<SignatureEntry> = Vec::with_capacity(entries.len());
        for e in entries {
            if e.duration == 0.0 {
                continue;
            }
            match merged.last_mut() {
                Some(last) if last.code == e.code => last.duration += e.duration,
                _ => merged.push(e),
            }
        }
        Ok(Signature { entries: merged })
    }

    /// Builds a signature from uniformly sampled zone codes with sample
    /// period `dt` seconds.
    ///
    /// # Errors
    /// Returns [`DsigError::InvalidSignature`] for an empty code sequence or a
    /// non-positive `dt`.
    pub fn from_sampled_codes(codes: &[u32], dt: f64) -> Result<Self> {
        if codes.is_empty() {
            return Err(DsigError::InvalidSignature(
                "no zone codes to build a signature from".into(),
            ));
        }
        if !(dt > 0.0) || !dt.is_finite() {
            return Err(DsigError::InvalidSignature(format!("invalid sample period {dt}")));
        }
        let entries = codes
            .iter()
            .map(|&c| SignatureEntry {
                code: ZoneCode(c),
                duration: dt,
            })
            .collect();
        Signature::new(entries)
    }

    /// The `(Z_i, Delta_i)` entries in traversal order.
    pub fn entries(&self) -> &[SignatureEntry] {
        &self.entries
    }

    /// Number of zone traversals `k` in the signature.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the signature has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total duration `T` covered by the signature, seconds.
    pub fn total_duration(&self) -> f64 {
        self.entries.iter().map(|e| e.duration).sum()
    }

    /// Number of *distinct* zone codes visited.
    pub fn distinct_zones(&self) -> usize {
        let mut codes: Vec<u32> = self.entries.iter().map(|e| e.code.value()).collect();
        codes.sort_unstable();
        codes.dedup();
        codes.len()
    }

    /// The zone code active at time `t` (seconds from the start of the
    /// signature). Times beyond the total duration return the last code;
    /// negative times return the first code.
    ///
    /// # Panics
    /// Panics if the signature is empty.
    pub fn code_at(&self, t: f64) -> ZoneCode {
        assert!(!self.entries.is_empty(), "code_at on an empty signature");
        if t <= 0.0 {
            return self.entries[0].code;
        }
        let mut acc = 0.0;
        for e in &self.entries {
            acc += e.duration;
            if t < acc {
                return e.code;
            }
        }
        self.entries[self.entries.len() - 1].code
    }

    /// The transition instants of the signature (cumulative entry boundaries,
    /// excluding 0 and the total duration).
    pub fn transition_times(&self) -> Vec<f64> {
        let mut times = Vec::with_capacity(self.entries.len().saturating_sub(1));
        let mut acc = 0.0;
        for e in &self.entries[..self.entries.len().saturating_sub(1)] {
            acc += e.duration;
            times.push(acc);
        }
        times
    }

    /// Returns a copy with every entry shorter than `min_dwell` seconds merged
    /// into its predecessor (or successor for a leading glitch).
    ///
    /// This models the finite response time of the asynchronous transition
    /// detector of Fig. 5: zone crossings caused by high-frequency noise
    /// chatter near a boundary are too short for the capture hardware to
    /// register, while genuine zone dwells (microseconds and longer for the
    /// paper's 200 µs Lissajous) are preserved.
    pub fn deglitched(&self, min_dwell: f64) -> Signature {
        if min_dwell <= 0.0 || self.entries.len() < 2 {
            return self.clone();
        }
        let mut merged: Vec<SignatureEntry> = Vec::with_capacity(self.entries.len());
        let mut carry = 0.0;
        for &e in &self.entries {
            if e.duration < min_dwell {
                // Too short to be registered: its time is absorbed by the
                // surrounding zone (the previous one when it exists).
                if let Some(last) = merged.last_mut() {
                    last.duration += e.duration;
                } else {
                    carry += e.duration;
                }
            } else {
                let mut entry = e;
                entry.duration += carry;
                carry = 0.0;
                merged.push(entry);
            }
        }
        if let Some(last) = merged.last_mut() {
            last.duration += carry;
        } else {
            // Every entry was a glitch: keep the dominant zone.
            return self.clone();
        }
        Signature::new(merged).expect("durations remain finite and non-negative")
    }

    /// Samples the signature as a decimal-coded chronogram (Fig. 7 top plot):
    /// `(time, code)` pairs on a uniform grid of `samples` points across the
    /// total duration.
    pub fn chronogram(&self, samples: usize) -> Vec<(f64, u32)> {
        let total = self.total_duration();
        (0..samples)
            .map(|k| {
                let t = total * k as f64 / samples.max(2) as f64;
                (t, self.code_at(t).value())
            })
            .collect()
    }
}

/// Magic prefix of the binary signature encoding (see [`Signature::to_bytes`]).
const CODEC_MAGIC: [u8; 4] = *b"DSG1";

impl Signature {
    /// Encodes the signature into a compact, self-describing binary form:
    /// a 4-byte magic (`DSG1`), the entry count as a little-endian `u32`,
    /// then one `(u32 code, f64 duration)` little-endian pair per entry.
    ///
    /// The encoding is exact: durations round-trip bit-for-bit through
    /// [`Signature::from_bytes`]. A six-zone paper signature costs 32 + 8
    /// bytes versus hundreds of kilobytes for the raw waveform pair, which is
    /// what makes storing and replaying full campaign outputs practical.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + 12 * self.entries.len());
        out.extend_from_slice(&CODEC_MAGIC);
        out.extend_from_slice(&(self.entries.len() as u32).to_le_bytes());
        for e in &self.entries {
            out.extend_from_slice(&e.code.value().to_le_bytes());
            out.extend_from_slice(&e.duration.to_bits().to_le_bytes());
        }
        out
    }

    /// Decodes a signature previously encoded with [`Signature::to_bytes`].
    ///
    /// Decoding never panics on malformed input: short buffers report
    /// [`DsigError::Truncated`], a wrong magic, an impossible entry count or
    /// trailing bytes report [`DsigError::Corrupt`], and smuggled invalid
    /// durations (negative, NaN, infinite) report
    /// [`DsigError::InvalidSignature`] through the [`Signature::new`]
    /// validation.
    ///
    /// # Errors
    /// See above.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let mut r = wire::ByteReader::new(bytes, "signature");
        r.magic(CODEC_MAGIC)?;
        let count = r.u32()? as usize;
        // Each entry is exactly 12 bytes; reject impossible counts before
        // allocating so a corrupted count field cannot demand gigabytes.
        r.check_count(count, 12)?;
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            let code = r.u32()?;
            let bits = r.u64()?;
            entries.push(SignatureEntry {
                code: ZoneCode(code),
                duration: f64::from_bits(bits),
            });
        }
        r.finish()?;
        Signature::new(entries)
    }
}

impl FromIterator<SignatureEntry> for Signature {
    fn from_iter<T: IntoIterator<Item = SignatureEntry>>(iter: T) -> Self {
        Signature::new(iter.into_iter().collect()).expect("finite non-negative durations")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(code: u32, duration: f64) -> SignatureEntry {
        SignatureEntry {
            code: ZoneCode(code),
            duration,
        }
    }

    #[test]
    fn zone_code_basics() {
        let a = ZoneCode(0b011100);
        let b = ZoneCode(0b111100);
        assert_eq!(a.hamming_distance(b), 1);
        assert_eq!(a.hamming_distance(a), 0);
        assert_eq!(a.to_binary_string(6), "011100");
        assert_eq!(a.to_string(), "28");
        assert_eq!(format!("{:b}", a), "11100");
        assert_eq!(ZoneCode::from(5u32).value(), 5);
    }

    #[test]
    fn new_merges_adjacent_identical_codes() {
        let s = Signature::new(vec![entry(1, 1.0), entry(1, 2.0), entry(2, 1.0), entry(1, 0.5)]).unwrap();
        assert_eq!(s.len(), 3);
        assert_eq!(s.entries()[0].duration, 3.0);
        assert_eq!(s.distinct_zones(), 2);
        assert!((s.total_duration() - 4.5).abs() < 1e-12);
    }

    #[test]
    fn new_drops_zero_durations_and_rejects_negative() {
        let s = Signature::new(vec![entry(1, 0.0), entry(2, 1.0)]).unwrap();
        assert_eq!(s.len(), 1);
        assert!(Signature::new(vec![entry(1, -1.0)]).is_err());
        assert!(Signature::new(vec![entry(1, f64::NAN)]).is_err());
    }

    #[test]
    fn from_sampled_codes_compresses_runs() {
        let codes = [4, 4, 4, 20, 20, 28, 28, 28, 28];
        let s = Signature::from_sampled_codes(&codes, 1e-6).unwrap();
        assert_eq!(s.len(), 3);
        assert!((s.entries()[0].duration - 3e-6).abs() < 1e-15);
        assert!((s.entries()[2].duration - 4e-6).abs() < 1e-15);
        assert!(Signature::from_sampled_codes(&[], 1e-6).is_err());
        assert!(Signature::from_sampled_codes(&[1], 0.0).is_err());
    }

    #[test]
    fn code_at_walks_the_timeline() {
        let s = Signature::new(vec![entry(1, 1.0), entry(2, 2.0), entry(3, 1.0)]).unwrap();
        assert_eq!(s.code_at(-1.0).value(), 1);
        assert_eq!(s.code_at(0.5).value(), 1);
        assert_eq!(s.code_at(1.5).value(), 2);
        assert_eq!(s.code_at(3.5).value(), 3);
        assert_eq!(s.code_at(100.0).value(), 3);
    }

    #[test]
    fn transition_times_exclude_endpoints() {
        let s = Signature::new(vec![entry(1, 1.0), entry(2, 2.0), entry(3, 1.0)]).unwrap();
        let t = s.transition_times();
        assert_eq!(t.len(), 2);
        assert!((t[0] - 1.0).abs() < 1e-12);
        assert!((t[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn chronogram_covers_duration() {
        let s = Signature::new(vec![entry(7, 1.0), entry(9, 1.0)]).unwrap();
        let chrono = s.chronogram(10);
        assert_eq!(chrono.len(), 10);
        assert_eq!(chrono[0].1, 7);
        assert_eq!(chrono[9].1, 9);
    }

    #[test]
    fn deglitch_merges_short_entries_and_preserves_duration() {
        let s = Signature::new(vec![
            entry(1, 10e-6),
            entry(2, 0.5e-6), // noise glitch
            entry(1, 9.5e-6),
            entry(3, 20e-6),
        ])
        .unwrap();
        let clean = s.deglitched(2e-6);
        assert_eq!(clean.len(), 2, "entries: {:?}", clean.entries());
        assert_eq!(clean.entries()[0].code.value(), 1);
        assert_eq!(clean.entries()[1].code.value(), 3);
        assert!((clean.total_duration() - s.total_duration()).abs() < 1e-15);
        assert!((clean.entries()[0].duration - 20e-6).abs() < 1e-12);
    }

    #[test]
    fn deglitch_handles_leading_glitch_and_noop_cases() {
        let s = Signature::new(vec![entry(9, 0.5e-6), entry(1, 50e-6)]).unwrap();
        let clean = s.deglitched(2e-6);
        assert_eq!(clean.len(), 1);
        assert!((clean.total_duration() - s.total_duration()).abs() < 1e-15);
        // Disabled deglitching and all-glitch signatures are returned unchanged.
        assert_eq!(s.deglitched(0.0), s);
        let tiny = Signature::new(vec![entry(1, 0.1e-6), entry(2, 0.2e-6)]).unwrap();
        assert_eq!(tiny.deglitched(1e-6), tiny);
    }

    #[test]
    fn from_iterator_collects() {
        let s: Signature = vec![entry(1, 1.0), entry(2, 1.0)].into_iter().collect();
        assert_eq!(s.len(), 2);
    }

    #[test]
    #[should_panic(expected = "empty signature")]
    fn code_at_panics_on_empty() {
        let s = Signature::default();
        let _ = s.code_at(0.0);
    }

    #[test]
    fn clone_and_eq_are_consistent() {
        // The engine's binary codec and golden cache rely on these trait
        // implementations agreeing with each other.
        let code = ZoneCode(0b10110);
        assert_eq!(code, code.clone());
        let e = entry(5, 1.5e-6);
        assert_eq!(e, e.clone());
        let s = Signature::new(vec![entry(1, 1.0), entry(2, 2.0)]).unwrap();
        let cloned = s.clone();
        assert_eq!(s, cloned);
        assert_eq!(s.entries(), cloned.entries());
        // Inequality in any component breaks signature equality.
        assert_ne!(e, entry(6, 1.5e-6));
        assert_ne!(e, entry(5, 1.6e-6));
        assert_ne!(s, Signature::new(vec![entry(1, 1.0)]).unwrap());
        assert_ne!(s, Signature::default());
    }

    #[test]
    fn debug_formats_are_informative() {
        let s = Signature::new(vec![entry(28, 2e-6)]).unwrap();
        let debug = format!("{s:?}");
        assert!(debug.contains("Signature"), "{debug}");
        assert!(debug.contains("28"), "{debug}");
        let e = format!("{:?}", entry(3, 1.0));
        assert!(e.contains("SignatureEntry") && e.contains("duration"), "{e}");
        assert!(format!("{:?}", ZoneCode(3)).contains("ZoneCode(3)"));
    }

    #[test]
    fn codec_round_trips_bit_exact() {
        let s = Signature::new(vec![
            entry(0, 1.7e-6),
            entry(63, 200e-6),
            entry(5, f64::MIN_POSITIVE), // denormal-adjacent duration survives
            entry(1, 123.456),
        ])
        .unwrap();
        let decoded = Signature::from_bytes(&s.to_bytes()).unwrap();
        assert_eq!(decoded, s);
        for (a, b) in decoded.entries().iter().zip(s.entries()) {
            assert_eq!(
                a.duration.to_bits(),
                b.duration.to_bits(),
                "durations must be bit-exact"
            );
        }
        // An empty signature round-trips too.
        let empty = Signature::default();
        assert_eq!(Signature::from_bytes(&empty.to_bytes()).unwrap(), empty);
    }

    #[test]
    fn codec_size_is_compact() {
        let s = Signature::new((0..10).map(|k| entry(k, 1e-6 * (k + 1) as f64)).collect()).unwrap();
        assert_eq!(s.to_bytes().len(), 8 + 12 * s.len());
    }

    #[test]
    fn codec_rejects_corrupted_buffers() {
        let s = Signature::new(vec![entry(1, 1.0), entry(2, 2.0)]).unwrap();
        let bytes = s.to_bytes();
        assert!(
            matches!(Signature::from_bytes(&bytes[..3]), Err(DsigError::Truncated { .. })),
            "short buffer"
        );
        // One byte short of the final entry: the count guard (which insists
        // every claimed entry fits) fires before the per-entry read does.
        assert!(
            matches!(
                Signature::from_bytes(&bytes[..bytes.len() - 1]),
                Err(DsigError::Truncated { .. } | DsigError::Corrupt { .. })
            ),
            "truncated entries"
        );
        let mut magic = bytes.clone();
        magic[0] = b'x';
        assert!(
            matches!(Signature::from_bytes(&magic), Err(DsigError::Corrupt { .. })),
            "bad magic"
        );
        let mut extra = bytes.clone();
        extra.push(0);
        assert!(
            matches!(Signature::from_bytes(&extra), Err(DsigError::Corrupt { .. })),
            "trailing bytes"
        );
        // An absurd count field is rejected before any allocation.
        let mut huge = bytes.clone();
        huge[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(
            matches!(Signature::from_bytes(&huge), Err(DsigError::Corrupt { .. })),
            "absurd count"
        );
        // A NaN duration smuggled into the payload is caught by validation.
        let mut nan = bytes;
        nan[12..20].copy_from_slice(&f64::NAN.to_bits().to_le_bytes());
        assert!(
            matches!(Signature::from_bytes(&nan), Err(DsigError::InvalidSignature(_))),
            "NaN duration"
        );
    }
}
