//! Asynchronous signature capture (Fig. 5).
//!
//! The on-chip capture circuit watches the monitor outputs, detects code
//! transitions asynchronously and records the time spent in each zone with an
//! m-bit counter clocked by a master clock. This module models that capture
//! over sampled `x(t)` / `y(t)` waveforms: any [`PointEncoder`] (a bank of
//! nonlinear monitors, a straight-line zoning baseline, ...) maps samples to
//! zone codes, and an optional [`CaptureClock`] quantizes the dwell times.

use sim_signal::Waveform;
use xy_monitor::ZonePartition;

use crate::error::{DsigError, Result};
use crate::signature::{Signature, SignatureEntry, ZoneCode};

/// Anything that maps an `(x, y)` observation point to a digital zone code.
///
/// The paper's encoder is the bank of nonlinear current-comparator monitors
/// ([`ZonePartition`]); the prior-work baseline uses straight lines
/// ([`crate::baseline::LinearZoning`]).
pub trait PointEncoder {
    /// Number of bits (monitors) in the zone code.
    fn bits(&self) -> usize;
    /// The zone code of an observation point.
    fn encode(&self, x: f64, y: f64) -> u32;
}

impl PointEncoder for ZonePartition {
    fn bits(&self) -> usize {
        ZonePartition::bits(self)
    }

    fn encode(&self, x: f64, y: f64) -> u32 {
        self.zone_code(x, y)
    }
}

/// The master-clock / counter model of the capture circuit (Fig. 5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CaptureClock {
    /// Master clock frequency in hertz.
    pub frequency_hz: f64,
    /// Width of the interval counter in bits (`m` in the paper).
    pub counter_bits: u32,
}

impl CaptureClock {
    /// Creates a capture clock.
    ///
    /// # Errors
    /// Returns [`DsigError::InvalidConfig`] for a non-positive frequency or a
    /// counter width outside `1..=32`.
    pub fn new(frequency_hz: f64, counter_bits: u32) -> Result<Self> {
        if !(frequency_hz > 0.0) || !frequency_hz.is_finite() {
            return Err(DsigError::InvalidConfig(format!(
                "master clock frequency must be positive (got {frequency_hz})"
            )));
        }
        if counter_bits == 0 || counter_bits > 32 {
            return Err(DsigError::InvalidConfig(format!(
                "counter width must be between 1 and 32 bits (got {counter_bits})"
            )));
        }
        Ok(CaptureClock {
            frequency_hz,
            counter_bits,
        })
    }

    /// A 10 MHz master clock with a 12-bit counter: one tick is 0.1 µs and the
    /// counter covers 409.6 µs, comfortably more than the 200 µs Lissajous
    /// period of the paper's experiment (Fig. 7).
    pub fn paper_default() -> Self {
        CaptureClock {
            frequency_hz: 10e6,
            counter_bits: 12,
        }
    }

    /// Duration of one clock tick, seconds.
    pub fn tick(&self) -> f64 {
        1.0 / self.frequency_hz
    }

    /// Maximum count the m-bit counter can hold.
    pub fn max_ticks(&self) -> u64 {
        (1u64 << self.counter_bits) - 1
    }

    /// Quantizes a dwell time to clock ticks, saturating at the counter range.
    pub fn quantize_ticks(&self, duration: f64) -> u64 {
        let ticks = (duration / self.tick()).round();
        if ticks <= 0.0 {
            0
        } else {
            (ticks as u64).min(self.max_ticks())
        }
    }

    /// Quantizes a dwell time and converts it back to seconds.
    pub fn quantize(&self, duration: f64) -> f64 {
        self.quantize_ticks(duration) as f64 * self.tick()
    }
}

/// Captures the digital signature of a pair of observed signals.
///
/// The two waveforms must share the same sampling grid (they are the
/// `x(t)` / `y(t)` pair composed into the Lissajous trajectory). When a
/// [`CaptureClock`] is supplied, every dwell time is quantized to the
/// master-clock tick and saturated to the counter range; `None` captures
/// exact (continuous-time) durations.
///
/// # Errors
/// Returns [`DsigError::Signal`]-wrapped grid mismatch errors and
/// [`DsigError::InvalidSignature`] for empty inputs.
pub fn capture_signature(
    encoder: &dyn PointEncoder,
    x: &Waveform,
    y: &Waveform,
    clock: Option<&CaptureClock>,
) -> Result<Signature> {
    if x.len() != y.len() {
        return Err(DsigError::Signal(sim_signal::SignalError::GridMismatch {
            left: x.len(),
            right: y.len(),
        }));
    }
    if x.is_empty() {
        return Err(DsigError::InvalidSignature(
            "cannot capture a signature from empty waveforms".into(),
        ));
    }

    let codes = x
        .samples()
        .iter()
        .zip(y.samples())
        .map(|(&xk, &yk)| encoder.encode(xk, yk));
    signature_from_codes(codes, x.dt(), clock)
}

/// Run-length encodes a stream of uniformly sampled zone codes into a
/// [`Signature`], optionally quantizing every dwell time with a
/// [`CaptureClock`].
///
/// This is the shared back half of every capture path: [`capture_signature`]
/// streams encoder outputs straight into it (no intermediate buffer), the
/// batched fast path ([`crate::batch::capture_signatures_batch`]) feeds it
/// one device of a lot at a time. Keeping a single implementation is what
/// guarantees the two paths produce bit-identical signatures.
///
/// # Errors
/// Returns [`DsigError::InvalidSignature`] for an empty code sequence or a
/// non-positive sample period.
pub fn signature_from_codes<I>(codes: I, dt: f64, clock: Option<&CaptureClock>) -> Result<Signature>
where
    I: IntoIterator<Item = u32>,
{
    if !(dt > 0.0) || !dt.is_finite() {
        return Err(DsigError::InvalidSignature(format!("invalid sample period {dt}")));
    }
    let mut codes = codes.into_iter();
    let Some(first) = codes.next() else {
        return Err(DsigError::InvalidSignature(
            "cannot capture a signature from empty waveforms".into(),
        ));
    };
    let mut entries: Vec<SignatureEntry> = Vec::new();
    let mut current_code = first;
    let mut dwell = dt;
    for code in codes {
        if code == current_code {
            dwell += dt;
        } else {
            entries.push(SignatureEntry {
                code: ZoneCode(current_code),
                duration: dwell,
            });
            current_code = code;
            dwell = dt;
        }
    }
    entries.push(SignatureEntry {
        code: ZoneCode(current_code),
        duration: dwell,
    });

    if let Some(clock) = clock {
        for e in &mut entries {
            e.duration = clock.quantize(e.duration);
        }
    }
    Signature::new(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial encoder that splits the plane into four quadrants around (0.5, 0.5).
    struct Quadrants;

    impl PointEncoder for Quadrants {
        fn bits(&self) -> usize {
            2
        }
        fn encode(&self, x: f64, y: f64) -> u32 {
            (u32::from(x > 0.5)) | (u32::from(y > 0.5) << 1)
        }
    }

    fn ramp_pair() -> (Waveform, Waveform) {
        // x ramps 0 -> 1 while y stays at 0.25: two zones are traversed.
        let x = Waveform::from_fn(0.0, 1.0, 100.0, |t| t);
        let y = Waveform::from_fn(0.0, 1.0, 100.0, |_| 0.25);
        (x, y)
    }

    #[test]
    fn clock_validation_and_quantization() {
        assert!(CaptureClock::new(0.0, 12).is_err());
        assert!(CaptureClock::new(1e6, 0).is_err());
        assert!(CaptureClock::new(1e6, 40).is_err());
        let clk = CaptureClock::new(1e6, 4).unwrap();
        assert_eq!(clk.tick(), 1e-6);
        assert_eq!(clk.max_ticks(), 15);
        assert_eq!(clk.quantize_ticks(3.4e-6), 3);
        assert_eq!(clk.quantize_ticks(1e-3), 15); // saturates
        assert_eq!(clk.quantize_ticks(1e-9), 0);
        assert!((clk.quantize(3.4e-6) - 3e-6).abs() < 1e-15);
    }

    #[test]
    fn paper_default_clock_covers_the_period() {
        let clk = CaptureClock::paper_default();
        assert!(clk.max_ticks() as f64 * clk.tick() > 200e-6);
    }

    #[test]
    fn capture_detects_zone_transitions() {
        let (x, y) = ramp_pair();
        let sig = capture_signature(&Quadrants, &x, &y, None).unwrap();
        assert_eq!(sig.len(), 2, "one transition expected: {:?}", sig.entries());
        assert_eq!(sig.entries()[0].code.value(), 0);
        assert_eq!(sig.entries()[1].code.value(), 1);
        // Both dwell times are about half the duration.
        assert!((sig.entries()[0].duration - 0.51).abs() < 0.02);
        assert!((sig.total_duration() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn quantized_capture_rounds_durations() {
        let (x, y) = ramp_pair();
        let clk = CaptureClock::new(10.0, 8).unwrap(); // 0.1 s ticks
        let sig = capture_signature(&Quadrants, &x, &y, Some(&clk)).unwrap();
        for e in sig.entries() {
            let ticks = e.duration / clk.tick();
            assert!(
                (ticks - ticks.round()).abs() < 1e-9,
                "duration not quantized: {}",
                e.duration
            );
        }
    }

    #[test]
    fn mismatched_grids_rejected() {
        let x = Waveform::from_fn(0.0, 1.0, 100.0, |t| t);
        let y = Waveform::from_fn(0.0, 1.0, 50.0, |_| 0.0);
        assert!(capture_signature(&Quadrants, &x, &y, None).is_err());
        let empty = Waveform::new(0.0, 1.0, vec![]);
        assert!(capture_signature(&Quadrants, &empty, &empty, None).is_err());
    }

    #[test]
    fn zone_partition_implements_point_encoder() {
        let partition = ZonePartition::paper_default().unwrap();
        let encoder: &dyn PointEncoder = &partition;
        assert_eq!(encoder.bits(), 6);
        assert_eq!(encoder.encode(0.3, 0.4), partition.zone_code(0.3, 0.4));
    }

    #[test]
    fn constant_signals_give_single_entry_signature() {
        let x = Waveform::from_fn(0.0, 1.0, 50.0, |_| 0.2);
        let y = Waveform::from_fn(0.0, 1.0, 50.0, |_| 0.2);
        let sig = capture_signature(&Quadrants, &x, &y, None).unwrap();
        assert_eq!(sig.len(), 1);
        assert_eq!(sig.distinct_zones(), 1);
    }
}
