//! Shared-stimulus batched signature capture — the population-scale fast path.
//!
//! Every device observed through one [`TestSetup`] sees the *same* input
//! samples: the synthesized stimulus, its noiseless band-limited observed
//! form and the saturation currents of every X- or DC-driven monitor input
//! transistor depend only on the setup, never on the device under test. The
//! per-device path ([`TestSetup::signature_of`]) recomputes all of that for
//! every device; per the ROADMAP "Hot paths" item this dominates per-device
//! cost (~0.25 ms/device at 2 MS/s).
//!
//! This module computes the shared work once per setup fingerprint and
//! evaluates device responses against it in batches:
//!
//! * [`StimulusBank`] — a bounded, LRU-evicting cache of [`SharedStimulus`]
//!   entries, keyed exactly by [`stimulus_key`] (no lossy hashing);
//! * [`SharedStimulus`] — the cached per-setup artifacts: raw stimulus,
//!   noiseless observed stimulus, and structure-of-arrays current-term
//!   streams for every monitor input transistor;
//! * [`capture_signatures_batch`] — evaluates N device responses against the
//!   shared stimulus with a cache-friendly inner loop (one pass per monitor
//!   over the sample stream) and scratch buffers reused across the whole
//!   batch — no per-device allocation beyond the returned signatures.
//!
//! # Bit-identity contract
//!
//! The fast path reuses the *exact* `f64` values the per-device path
//! computes: cached terms are produced by the same `saturation_current`
//! calls on the same voltages, branch currents are added in the same slot
//! order, and run-length encoding goes through the same
//! [`signature_from_codes`] helper.
//! Batched capture is therefore bit-identical to
//! [`TestSetup::signature_of`] at every batch size; the workspace
//! determinism and equivalence tests enforce this.
//!
//! # Examples
//!
//! ```
//! use cut_filters::BiquadParams;
//! use dsig_core::{BatchDevice, StimulusBank, TestSetup};
//!
//! # fn main() -> Result<(), dsig_core::DsigError> {
//! let setup = TestSetup::paper_default()?.with_sample_rate(1e6)?;
//! let bank = StimulusBank::new();
//! // Synthesized once; every later request for the same setup is a hit.
//! let shared = bank.shared_for(&setup)?;
//!
//! let lot: Vec<BatchDevice> = (0..4)
//!     .map(|i| BatchDevice::new(BiquadParams::paper_default().with_f0_shift_pct(i as f64), i))
//!     .collect();
//! let signatures = setup.signatures_of_batch(&shared, &lot)?;
//! assert_eq!(signatures.len(), 4);
//! // Bit-identical to the per-device path.
//! assert_eq!(signatures[2], setup.signature_of(&lot[2].cut, lot[2].noise_seed)?);
//! assert_eq!(bank.hits(), 0);
//! assert_eq!(bank.misses(), 1);
//! # Ok(())
//! # }
//! ```

use std::sync::{Arc, Mutex};

use cut_filters::BiquadParams;
use sim_signal::lowpass_in_place;
use sim_signal::Waveform;
use xy_monitor::{saturation_current, MonitorInput, MosParams};

use crate::capture::signature_from_codes;
use crate::error::{DsigError, Result};
use crate::flow::TestSetup;
use crate::signature::Signature;

/// The exact cache key of a [`SharedStimulus`]: every [`TestSetup`] parameter
/// the shared per-setup artifacts depend on, serialized losslessly as 64-bit
/// words. Equal keys *guarantee* interchangeable shared stimuli.
///
/// Deliberately excluded (the shared artifacts do not depend on them, so
/// setups differing only there share one bank entry):
///
/// * the **noise model** — noise is drawn per device at capture time;
/// * the **capture clock** and **transition deglitch dwell** — both apply
///   after zone encoding;
/// * monitor **supply voltage and labels** — the behavioural comparator
///   output depends only on the input transistors and their drive
///   assignment.
pub fn stimulus_key(setup: &TestSetup) -> Vec<u64> {
    let mut key = Vec::with_capacity(128);
    key.push(setup.sample_rate.to_bits());
    match setup.monitor_bandwidth_hz {
        Some(bandwidth) => key.push(bandwidth.to_bits()),
        None => key.push(u64::MAX),
    }
    push_stimulus_words(&mut key, &setup.stimulus);
    key.push(setup.partition.bits() as u64);
    for monitor in setup.partition.monitors() {
        push_monitor_words(&mut key, monitor);
    }
    key
}

/// Appends the lossless word serialization of a multitone stimulus — offset,
/// fundamental, then every tone — to a cache key. Shared by [`stimulus_key`]
/// and the engine's `golden_key` so the two keys can never drift apart on
/// what "the same stimulus" means.
pub fn push_stimulus_words(key: &mut Vec<u64>, stimulus: &sim_signal::MultitoneSpec) {
    key.push(stimulus.offset().to_bits());
    key.push(stimulus.fundamental_hz().to_bits());
    for tone in stimulus.tones() {
        key.push(u64::from(tone.harmonic));
        key.push(tone.amplitude.to_bits());
        key.push(tone.phase_rad.to_bits());
    }
}

/// Appends the behavioural word serialization of one monitor — output
/// polarity, drive assignment, then polarity and electrical parameters of
/// every input transistor — to a cache key. The supply voltage and label are
/// deliberately excluded: the comparator's digital output does not depend on
/// them. Shared by [`stimulus_key`] and the engine's `golden_key`.
pub fn push_monitor_words(key: &mut Vec<u64>, monitor: &xy_monitor::CurrentComparator) {
    key.push(u64::from(monitor.inverted));
    for input in &monitor.inputs {
        match input {
            MonitorInput::XAxis => key.push(0),
            MonitorInput::YAxis => key.push(1),
            MonitorInput::Dc(bias) => {
                key.push(2);
                key.push(bias.to_bits());
            }
        }
    }
    for t in &monitor.transistors {
        key.push(
            format!("{:?}", t.polarity)
                .bytes()
                .fold(0u64, |acc, b| acc << 8 | u64::from(b)),
        );
        for v in [t.width, t.length, t.vth0, t.kp, t.lambda, t.subthreshold_n] {
            key.push(v.to_bits());
        }
    }
}

/// One device of a batched capture: the CUT parameters and the seed of its
/// measurement-noise realisation (the same seed [`TestSetup::signature_of`]
/// takes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchDevice {
    /// The (possibly deviated or faulty) CUT parameters of this device.
    pub cut: BiquadParams,
    /// Seed of the device's measurement-noise realisation; unused when the
    /// setup is noiseless.
    pub noise_seed: u64,
}

impl BatchDevice {
    /// Creates a batch entry for one device.
    pub fn new(cut: BiquadParams, noise_seed: u64) -> Self {
        BatchDevice { cut, noise_seed }
    }
}

/// One precomputed current term of a monitor input transistor.
#[derive(Debug, Clone)]
enum TermSlot {
    /// DC-driven gate: the saturation current is one constant for all samples.
    Const(f64),
    /// X-driven gate: per-sample currents precomputed on the shared noiseless
    /// observed stimulus, plus the transistor model for the noisy case where
    /// x differs per device.
    XGate { params: MosParams, shared: Vec<f64> },
    /// Y-driven gate: always evaluated against the per-device response.
    YGate(MosParams),
}

impl TermSlot {
    /// The current of this slot at sample `k`, given the observed `x`/`y`
    /// sample streams. `x_is_shared` selects the precomputed X streams (the
    /// noiseless case, where x is the shared observed stimulus itself).
    #[inline]
    fn value(&self, k: usize, x: &[f64], y: &[f64], x_is_shared: bool) -> f64 {
        match self {
            TermSlot::Const(current) => *current,
            TermSlot::XGate { params, shared } => {
                if x_is_shared {
                    shared[k]
                } else {
                    saturation_current(params, x[k])
                }
            }
            TermSlot::YGate(params) => saturation_current(params, y[k]),
        }
    }
}

/// The four input-transistor terms of one monitor, in `[M1, M2, M3, M4]`
/// slot order (M1 + M2 feed the left branch, M3 + M4 the right).
#[derive(Debug, Clone)]
struct MonitorTerms {
    inverted: bool,
    slots: [TermSlot; 4],
}

/// The per-setup artifacts shared by every device of a batched capture: the
/// synthesized stimulus, its noiseless observed (band-limited) form and the
/// structure-of-arrays current-term streams of the monitor bank.
///
/// Obtain one from a [`StimulusBank`] (cached per [`stimulus_key`]) or
/// directly with [`SharedStimulus::new`].
#[derive(Debug, Clone)]
pub struct SharedStimulus {
    key: Vec<u64>,
    /// The raw synthesized stimulus (`stimulus.sample(1, sample_rate)`).
    x_raw: Waveform,
    /// The noiseless observed stimulus: `x_raw` low-pass filtered at the
    /// monitor bandwidth (or `x_raw` itself without a bandwidth limit).
    x_obs: Waveform,
    monitors: Vec<MonitorTerms>,
}

impl SharedStimulus {
    /// Synthesizes the shared artifacts of a setup: the stimulus sample
    /// stream, its noiseless observed form, and the current-term streams of
    /// every X- or DC-driven monitor input transistor.
    ///
    /// # Errors
    /// Returns [`DsigError::InvalidConfig`] when the setup's sample rate
    /// resolves no stimulus samples at all.
    pub fn new(setup: &TestSetup) -> Result<Self> {
        let x_raw = setup.stimulus.sample(1, setup.sample_rate);
        if x_raw.is_empty() {
            return Err(DsigError::InvalidConfig(format!(
                "sample rate {} Hz resolves no stimulus samples",
                setup.sample_rate
            )));
        }
        let x_obs = match setup.monitor_bandwidth_hz {
            Some(bandwidth) => x_raw.lowpass(bandwidth),
            None => x_raw.clone(),
        };
        let monitors = setup
            .partition
            .monitors()
            .iter()
            .map(|monitor| MonitorTerms {
                inverted: monitor.inverted,
                slots: std::array::from_fn(|i| match monitor.inputs[i] {
                    MonitorInput::Dc(bias) => TermSlot::Const(saturation_current(&monitor.transistors[i], bias)),
                    MonitorInput::XAxis => TermSlot::XGate {
                        params: monitor.transistors[i],
                        shared: x_obs
                            .samples()
                            .iter()
                            .map(|&x| saturation_current(&monitor.transistors[i], x))
                            .collect(),
                    },
                    MonitorInput::YAxis => TermSlot::YGate(monitor.transistors[i]),
                }),
            })
            .collect();
        Ok(SharedStimulus {
            key: stimulus_key(setup),
            x_raw,
            x_obs,
            monitors,
        })
    }

    /// Number of samples in the shared stimulus (one Lissajous period).
    pub fn samples(&self) -> usize {
        self.x_obs.len()
    }

    /// Whether this shared stimulus was built for (an equivalent of) the
    /// given setup — exact [`stimulus_key`] equality.
    pub fn matches(&self, setup: &TestSetup) -> bool {
        self.key == stimulus_key(setup)
    }

    /// Zone-encodes one device's observed sample streams into `codes`
    /// (cleared first), one structure-of-arrays pass per monitor.
    fn encode_into(&self, x: &[f64], y: &[f64], x_is_shared: bool, codes: &mut Vec<u32>) {
        let n = y.len();
        codes.clear();
        codes.resize(n, 0);
        for (m, terms) in self.monitors.iter().enumerate() {
            let bit = 1u32 << m;
            let [s0, s1, s2, s3] = &terms.slots;
            for k in 0..n {
                let left = s0.value(k, x, y, x_is_shared) + s1.value(k, x, y, x_is_shared);
                let right = s2.value(k, x, y, x_is_shared) + s3.value(k, x, y, x_is_shared);
                if ((left - right) > 0.0) ^ terms.inverted {
                    codes[k] |= bit;
                }
            }
        }
    }
}

/// Captures the signatures of a batch of devices sharing one setup, reusing
/// the shared stimulus artifacts and a single set of scratch buffers for the
/// whole batch.
///
/// The result is **bit-identical** to calling [`TestSetup::signature_of`]
/// per device (see the [module docs](self) for why), for every batch size —
/// including the noisy case, where each device still draws its own x/y noise
/// realisations from its seed.
///
/// # Errors
/// Returns [`DsigError::InvalidConfig`] when `shared` was built for a
/// different setup, and propagates capture errors.
pub fn capture_signatures_batch(
    setup: &TestSetup,
    shared: &SharedStimulus,
    devices: &[BatchDevice],
) -> Result<Vec<Signature>> {
    if !shared.matches(setup) {
        return Err(DsigError::InvalidConfig(
            "shared stimulus does not match the setup; fetch it from a StimulusBank with this setup".into(),
        ));
    }
    let n = shared.x_obs.len();
    let dt = shared.x_obs.dt();
    let x_is_shared = setup.noise.is_none();

    // Scratch buffers reused across every device of the batch.
    let mut y: Vec<f64> = Vec::new();
    let mut x_dev: Vec<f64> = Vec::new();
    let mut codes: Vec<u32> = Vec::new();

    let mut out = Vec::with_capacity(devices.len());
    for device in devices {
        device
            .cut
            .steady_state_response_into(&setup.stimulus, 1, setup.sample_rate, &mut y);
        if y.len() != n {
            return Err(DsigError::Signal(sim_signal::SignalError::GridMismatch {
                left: n,
                right: y.len(),
            }));
        }
        if !x_is_shared {
            setup
                .noise
                .apply_in_place(&mut y, device.noise_seed.wrapping_mul(2).wrapping_add(1));
        }
        if let Some(bandwidth) = setup.monitor_bandwidth_hz {
            lowpass_in_place(&mut y, dt, bandwidth);
        }

        let x: &[f64] = if x_is_shared {
            shared.x_obs.samples()
        } else {
            x_dev.clear();
            x_dev.extend_from_slice(shared.x_raw.samples());
            setup
                .noise
                .apply_in_place(&mut x_dev, device.noise_seed.wrapping_mul(2));
            if let Some(bandwidth) = setup.monitor_bandwidth_hz {
                lowpass_in_place(&mut x_dev, dt, bandwidth);
            }
            &x_dev
        };

        shared.encode_into(x, &y, x_is_shared, &mut codes);
        let raw = signature_from_codes(codes.iter().copied(), dt, setup.clock.as_ref())?;
        out.push(raw.deglitched(setup.transition_min_dwell));
    }
    Ok(out)
}

/// Default number of [`SharedStimulus`] entries a [`StimulusBank`] retains.
pub const DEFAULT_BANK_CAPACITY: usize = 8;

#[derive(Debug)]
struct BankEntry {
    key: Vec<u64>,
    shared: Arc<SharedStimulus>,
    last_used: u64,
}

#[derive(Debug)]
struct BankInner {
    entries: Vec<BankEntry>,
    capacity: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// A bounded, thread-safe cache of [`SharedStimulus`] entries keyed exactly
/// by [`stimulus_key`].
///
/// Synthesizing a shared stimulus costs about as much as observing a handful
/// of devices, so campaigns and characterization runs keep one bank for
/// their lifetime and fetch per-setup entries from it. When the bank is full
/// the least-recently-used entry is evicted; [`StimulusBank::hits`] /
/// [`StimulusBank::misses`] / [`StimulusBank::evictions`] expose the cache
/// behaviour for tests and monitoring.
#[derive(Debug)]
pub struct StimulusBank {
    inner: Mutex<BankInner>,
}

impl StimulusBank {
    /// A bank retaining up to [`DEFAULT_BANK_CAPACITY`] shared stimuli.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_BANK_CAPACITY)
    }

    /// A bank retaining up to `capacity` shared stimuli (at least one).
    pub fn with_capacity(capacity: usize) -> Self {
        StimulusBank {
            inner: Mutex::new(BankInner {
                entries: Vec::new(),
                capacity: capacity.max(1),
                tick: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
        }
    }

    /// Returns the shared stimulus for a setup, synthesizing it on the first
    /// request and evicting the least-recently-used entry when the bank is
    /// at capacity.
    ///
    /// # Errors
    /// Propagates [`SharedStimulus::new`] errors.
    pub fn shared_for(&self, setup: &TestSetup) -> Result<Arc<SharedStimulus>> {
        let key = stimulus_key(setup);
        {
            let mut inner = self.inner.lock().expect("stimulus bank lock poisoned");
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(i) = inner.entries.iter().position(|e| e.key == key) {
                inner.hits += 1;
                inner.entries[i].last_used = tick;
                return Ok(Arc::clone(&inner.entries[i].shared));
            }
            inner.misses += 1;
        }

        // Synthesize outside the lock: this is the expensive part.
        let shared = Arc::new(SharedStimulus::new(setup)?);
        let mut inner = self.inner.lock().expect("stimulus bank lock poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(i) = inner.entries.iter().position(|e| e.key == key) {
            // A racing builder inserted the same setup first; keep its entry.
            inner.entries[i].last_used = tick;
            return Ok(Arc::clone(&inner.entries[i].shared));
        }
        if inner.entries.len() >= inner.capacity {
            let lru = inner
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i)
                .expect("capacity is at least one");
            inner.entries.swap_remove(lru);
            inner.evictions += 1;
        }
        inner.entries.push(BankEntry {
            key,
            shared: Arc::clone(&shared),
            last_used: tick,
        });
        Ok(shared)
    }

    /// Number of shared stimuli currently retained.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("stimulus bank lock poisoned").entries.len()
    }

    /// Whether the bank is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum number of entries the bank retains before evicting.
    pub fn capacity(&self) -> usize {
        self.inner.lock().expect("stimulus bank lock poisoned").capacity
    }

    /// Number of [`StimulusBank::shared_for`] calls answered from the cache.
    pub fn hits(&self) -> u64 {
        self.inner.lock().expect("stimulus bank lock poisoned").hits
    }

    /// Number of [`StimulusBank::shared_for`] calls that had to synthesize.
    pub fn misses(&self) -> u64 {
        self.inner.lock().expect("stimulus bank lock poisoned").misses
    }

    /// Number of entries evicted to make room for a newly synthesized one.
    pub fn evictions(&self) -> u64 {
        self.inner.lock().expect("stimulus bank lock poisoned").evictions
    }
}

impl Default for StimulusBank {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_signal::NoiseModel;

    fn setup() -> TestSetup {
        TestSetup::paper_default().unwrap().with_sample_rate(1e6).unwrap()
    }

    fn lot(count: usize) -> Vec<BatchDevice> {
        (0..count)
            .map(|i| {
                BatchDevice::new(
                    BiquadParams::paper_default().with_f0_shift_pct(i as f64 * 2.5 - 5.0),
                    1000 + i as u64,
                )
            })
            .collect()
    }

    #[test]
    fn batched_capture_is_bit_identical_to_per_device_noiseless() {
        let setup = setup();
        let shared = SharedStimulus::new(&setup).unwrap();
        let devices = lot(5);
        let batched = capture_signatures_batch(&setup, &shared, &devices).unwrap();
        for (device, batched_sig) in devices.iter().zip(&batched) {
            let per_device = setup.signature_of(&device.cut, device.noise_seed).unwrap();
            assert_eq!(*batched_sig, per_device, "device {:?}", device.cut.f0_hz);
        }
    }

    #[test]
    fn batched_capture_is_bit_identical_to_per_device_noisy() {
        let setup = setup().with_noise(NoiseModel::paper_default());
        let shared = SharedStimulus::new(&setup).unwrap();
        let devices = lot(5);
        let batched = capture_signatures_batch(&setup, &shared, &devices).unwrap();
        for (device, batched_sig) in devices.iter().zip(&batched) {
            let per_device = setup.signature_of(&device.cut, device.noise_seed).unwrap();
            assert_eq!(*batched_sig, per_device, "noise seed {}", device.noise_seed);
        }
    }

    #[test]
    fn batch_size_does_not_change_results() {
        let setup = setup();
        let shared = SharedStimulus::new(&setup).unwrap();
        let devices = lot(7);
        let whole = capture_signatures_batch(&setup, &shared, &devices).unwrap();
        let mut split = capture_signatures_batch(&setup, &shared, &devices[..3]).unwrap();
        split.extend(capture_signatures_batch(&setup, &shared, &devices[3..]).unwrap());
        assert_eq!(whole, split);
        let singles: Vec<Signature> = devices
            .iter()
            .map(|d| {
                capture_signatures_batch(&setup, &shared, std::slice::from_ref(d))
                    .unwrap()
                    .remove(0)
            })
            .collect();
        assert_eq!(whole, singles);
    }

    #[test]
    fn no_bandwidth_and_no_clock_path_matches_too() {
        let mut setup = setup();
        setup.monitor_bandwidth_hz = None;
        setup.clock = None;
        let shared = SharedStimulus::new(&setup).unwrap();
        let devices = lot(3);
        let batched = capture_signatures_batch(&setup, &shared, &devices).unwrap();
        for (device, batched_sig) in devices.iter().zip(&batched) {
            assert_eq!(
                *batched_sig,
                setup.signature_of(&device.cut, device.noise_seed).unwrap()
            );
        }
    }

    #[test]
    fn mismatched_shared_stimulus_is_rejected() {
        let shared = SharedStimulus::new(&setup()).unwrap();
        let other = setup().with_sample_rate(2e6).unwrap();
        assert!(capture_signatures_batch(&other, &shared, &lot(1)).is_err());
        assert!(shared.matches(&setup()));
        assert!(!shared.matches(&other));
    }

    #[test]
    fn noise_model_does_not_split_the_key() {
        // Noise is drawn per device at capture time, so noisy and noiseless
        // setups share one bank entry (like the engine's golden cache).
        let quiet = setup();
        let noisy = setup().with_noise(NoiseModel::paper_default());
        assert_eq!(stimulus_key(&quiet), stimulus_key(&noisy));
        // Clock and deglitch dwell apply after encoding: also shared.
        let mut unclocked = setup();
        unclocked.clock = None;
        unclocked.transition_min_dwell = 0.0;
        assert_eq!(stimulus_key(&quiet), stimulus_key(&unclocked));
        // The sample rate is part of the key.
        assert_ne!(
            stimulus_key(&quiet),
            stimulus_key(&setup().with_sample_rate(2e6).unwrap())
        );
    }

    #[test]
    fn bank_hits_and_misses() {
        let bank = StimulusBank::new();
        assert!(bank.is_empty());
        let a = bank.shared_for(&setup()).unwrap();
        assert_eq!((bank.hits(), bank.misses()), (0, 1));
        let b = bank.shared_for(&setup()).unwrap();
        assert_eq!((bank.hits(), bank.misses()), (1, 1));
        assert!(Arc::ptr_eq(&a, &b), "same setup must reuse the synthesized entry");
        let _ = bank.shared_for(&setup().with_sample_rate(2e6).unwrap()).unwrap();
        assert_eq!((bank.hits(), bank.misses()), (1, 2));
        assert_eq!(bank.len(), 2);
    }

    #[test]
    fn bank_evicts_least_recently_used() {
        let bank = StimulusBank::with_capacity(2);
        assert_eq!(bank.capacity(), 2);
        let rate_a = setup();
        let rate_b = setup().with_sample_rate(2e6).unwrap();
        let rate_c = setup().with_sample_rate(5e6).unwrap();
        bank.shared_for(&rate_a).unwrap();
        bank.shared_for(&rate_b).unwrap();
        assert_eq!(bank.evictions(), 0, "no eviction below capacity");
        bank.shared_for(&rate_a).unwrap(); // refresh a: b is now the LRU
        bank.shared_for(&rate_c).unwrap(); // evicts b
        assert_eq!(bank.len(), 2);
        assert_eq!((bank.hits(), bank.misses()), (1, 3));
        assert_eq!(bank.evictions(), 1, "filling past capacity must evict the LRU");
        bank.shared_for(&rate_a).unwrap();
        assert_eq!(bank.hits(), 2, "the refreshed entry must have survived eviction");
        bank.shared_for(&rate_b).unwrap();
        assert_eq!(bank.misses(), 4, "the evicted entry must be re-synthesized");
        assert_eq!(bank.evictions(), 2, "re-inserting past capacity evicts again");
    }

    #[test]
    fn empty_stimulus_rejected() {
        // A sample rate so low that one period resolves zero samples. The
        // validated constructor refuses such rates, so build the setup field
        // by hand.
        let mut degenerate = setup();
        degenerate.sample_rate = 1.0;
        assert!(SharedStimulus::new(&degenerate).is_err());
    }
}
