//! Baseline test methods used for comparison.
//!
//! Two baselines are implemented:
//!
//! * **Straight-line zoning** ([`LinearZoning`]): the prior-work approach the
//!   paper improves upon (references \[12\], \[13\]): the X-Y plane is divided by
//!   straight lines implemented with weighted adders and comparators. The
//!   same signature/NDF machinery applies, only the boundary shapes differ.
//! * **Raw output comparison** ([`normalized_output_error`]): a classic
//!   transient-test style metric that compares the CUT output waveform
//!   directly against the golden output (no on-chip signature hardware).

use sim_signal::Waveform;

use crate::capture::PointEncoder;
use crate::error::{DsigError, Result};

/// One straight boundary `a x + b y + c = 0` in the X-Y plane.
///
/// A point is on the "1" side when `a x + b y + c > 0` after orientation
/// normalization (the side containing the origin reads 0, matching the zone
/// codification of §IV-A).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearBoundary {
    /// Coefficient of `x`.
    pub a: f64,
    /// Coefficient of `y`.
    pub b: f64,
    /// Constant term.
    pub c: f64,
}

impl LinearBoundary {
    /// Creates a boundary, normalising its orientation so that the origin
    /// lies on the `0` side.
    ///
    /// # Errors
    /// Returns [`DsigError::InvalidConfig`] for a degenerate line (`a = b = 0`).
    pub fn new(a: f64, b: f64, c: f64) -> Result<Self> {
        if a == 0.0 && b == 0.0 {
            return Err(DsigError::InvalidConfig(
                "degenerate straight boundary (a = b = 0)".into(),
            ));
        }
        // Orient so the origin evaluates non-positive.
        let at_origin = c;
        if at_origin > 0.0 {
            Ok(LinearBoundary { a: -a, b: -b, c: -c })
        } else {
            Ok(LinearBoundary { a, b, c })
        }
    }

    /// A vertical boundary `x = x0`.
    pub fn vertical(x0: f64) -> Self {
        LinearBoundary::new(1.0, 0.0, -x0).expect("non-degenerate")
    }

    /// A horizontal boundary `y = y0`.
    pub fn horizontal(y0: f64) -> Self {
        LinearBoundary::new(0.0, 1.0, -y0).expect("non-degenerate")
    }

    /// Digital output of the comparator implementing this line.
    pub fn output(&self, x: f64, y: f64) -> bool {
        self.a * x + self.b * y + self.c > 0.0
    }
}

/// A zone partition made of straight lines (the prior-work monitors).
#[derive(Debug, Clone, PartialEq)]
pub struct LinearZoning {
    boundaries: Vec<LinearBoundary>,
}

impl LinearZoning {
    /// Creates a straight-line partition.
    ///
    /// # Errors
    /// Returns [`DsigError::InvalidConfig`] for an empty or over-wide (>32) bank.
    pub fn new(boundaries: Vec<LinearBoundary>) -> Result<Self> {
        if boundaries.is_empty() {
            return Err(DsigError::InvalidConfig(
                "a linear zoning needs at least one boundary".into(),
            ));
        }
        if boundaries.len() > 32 {
            return Err(DsigError::InvalidConfig(format!(
                "at most 32 boundaries are supported (got {})",
                boundaries.len()
            )));
        }
        Ok(LinearZoning { boundaries })
    }

    /// A six-line partition comparable in richness to the paper's six
    /// nonlinear monitors: two vertical cuts, two horizontal cuts, the main
    /// diagonal and an anti-diagonal.
    pub fn paper_comparable() -> Self {
        LinearZoning {
            boundaries: vec![
                LinearBoundary::vertical(0.35),
                LinearBoundary::vertical(0.65),
                LinearBoundary::horizontal(0.35),
                LinearBoundary::horizontal(0.65),
                LinearBoundary::new(1.0, -1.0, 0.0).expect("non-degenerate"),
                LinearBoundary::new(1.0, 1.0, -1.0).expect("non-degenerate"),
            ],
        }
    }

    /// The straight boundaries of the partition.
    pub fn boundaries(&self) -> &[LinearBoundary] {
        &self.boundaries
    }
}

impl PointEncoder for LinearZoning {
    fn bits(&self) -> usize {
        self.boundaries.len()
    }

    fn encode(&self, x: f64, y: f64) -> u32 {
        let mut code = 0u32;
        for (i, b) in self.boundaries.iter().enumerate() {
            if b.output(x, y) {
                code |= 1 << i;
            }
        }
        code
    }
}

/// Classic waveform-comparison baseline: the RMS error between the observed
/// and golden CUT outputs normalized by the golden peak-to-peak amplitude.
///
/// # Errors
/// Propagates grid mismatch and degenerate-waveform errors.
pub fn normalized_output_error(golden: &Waveform, observed: &Waveform) -> Result<f64> {
    Ok(sim_signal::normalized_rms_error(golden, observed)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundary_orientation_puts_origin_on_zero_side() {
        let b = LinearBoundary::new(1.0, 1.0, -1.0).unwrap(); // x + y = 1
        assert!(!b.output(0.0, 0.0));
        assert!(b.output(0.8, 0.8));
        // A line written with the opposite sign is normalised to the same orientation.
        let b2 = LinearBoundary::new(-1.0, -1.0, 1.0).unwrap();
        assert_eq!(b.output(0.8, 0.8), b2.output(0.8, 0.8));
        assert_eq!(b.output(0.1, 0.1), b2.output(0.1, 0.1));
    }

    #[test]
    fn degenerate_boundary_rejected() {
        assert!(LinearBoundary::new(0.0, 0.0, 1.0).is_err());
    }

    #[test]
    fn vertical_and_horizontal_helpers() {
        let v = LinearBoundary::vertical(0.5);
        assert!(!v.output(0.4, 0.9));
        assert!(v.output(0.6, 0.1));
        let h = LinearBoundary::horizontal(0.5);
        assert!(!h.output(0.9, 0.4));
        assert!(h.output(0.1, 0.6));
    }

    #[test]
    fn linear_zoning_encodes_distinct_regions() {
        let z = LinearZoning::paper_comparable();
        assert_eq!(z.bits(), 6);
        assert_eq!(z.boundaries().len(), 6);
        let c_low = z.encode(0.1, 0.1);
        let c_high = z.encode(0.9, 0.9);
        let c_mid = z.encode(0.5, 0.5);
        assert_ne!(c_low, c_high);
        assert_ne!(c_low, c_mid);
        // The origin-side zone is all zeros.
        assert_eq!(z.encode(0.0, 0.0), 0);
    }

    #[test]
    fn empty_zoning_rejected() {
        assert!(LinearZoning::new(vec![]).is_err());
    }

    #[test]
    fn adjacent_zones_differ_by_one_bit() {
        let z = LinearZoning::paper_comparable();
        // March across the x = 0.35 boundary at y = 0.1: exactly one bit flips.
        let before = z.encode(0.349, 0.1);
        let after = z.encode(0.351, 0.1);
        assert_eq!((before ^ after).count_ones(), 1);
    }

    #[test]
    fn normalized_output_error_baseline() {
        let golden = Waveform::from_fn(0.0, 1e-3, 1e6, |t| {
            0.5 + 0.3 * (2.0 * std::f64::consts::PI * 5e3 * t).sin()
        });
        let observed = golden.map(|v| v + 0.006);
        let err = normalized_output_error(&golden, &observed).unwrap();
        assert!((err - 0.01).abs() < 1e-3, "error {err}");
        let constant = Waveform::from_fn(0.0, 1e-3, 1e6, |_| 0.5);
        assert!(normalized_output_error(&constant, &observed).is_err());
    }
}
