//! The metric primitives: counters, gauges, histograms and span timers.
//!
//! All primitives are updated with `Relaxed` atomics — each metric is an
//! independent statistic and no cross-metric ordering is promised. A
//! snapshot is therefore *monotonically consistent* per metric (counters
//! never run backwards between scrapes) without being a cross-metric
//! transaction, which is exactly what an operator polling a live fleet
//! needs and all the hot path can afford.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use crate::snapshot::HistogramSnapshot;

/// Number of latency buckets in a [`Histogram`]: power-of-two microsecond
/// upper bounds `1, 2, 4, …, 2^26` (≈ 67 s) plus one overflow bucket.
pub const HISTOGRAM_BUCKETS: usize = 28;

/// A monotonically increasing event counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one to the counter.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Returns the current count.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-write-wins floating-point gauge (stored as [`f64::to_bits`], so
/// the snapshot round-trips the value bit-exactly).
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge {
            bits: AtomicU64::new(0.0f64.to_bits()),
        }
    }
}

impl Gauge {
    /// Creates a gauge at `0.0`.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the gauge to `v`.
    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Returns the current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A fixed-bin latency histogram over microseconds.
///
/// Bucket `i < 27` counts samples with `value_us <= 2^i`; the final bucket
/// counts everything larger (≈ 67 s and up). Exponential bins keep the
/// structure a fixed 28 atomics wide while resolving quantiles to within a
/// factor of two across nine orders of magnitude — plenty for trend and
/// regression detection, which is what the workspace uses latencies for.
#[derive(Debug)]
pub struct Histogram {
    counts: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
    max_us: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }
}

/// The inclusive upper bound (µs) of bucket `index`; `u64::MAX` for the
/// overflow bucket.
pub(crate) fn bucket_upper_us(index: usize) -> u64 {
    if index + 1 >= HISTOGRAM_BUCKETS {
        u64::MAX
    } else {
        1u64 << index
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    fn bucket_index(value_us: u64) -> usize {
        if value_us <= 1 {
            0
        } else {
            let bits = (u64::BITS - (value_us - 1).leading_zeros()) as usize;
            bits.min(HISTOGRAM_BUCKETS - 1)
        }
    }

    /// Records one sample of `value_us` microseconds.
    #[inline]
    pub fn record_us(&self, value_us: u64) {
        self.counts[Histogram::bucket_index(value_us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(value_us, Ordering::Relaxed);
        // The exact observed maximum keeps tail quantiles honest when
        // samples land in the overflow bucket (whose bound is u64::MAX).
        self.max_us.fetch_max(value_us, Ordering::Relaxed);
    }

    /// Records one elapsed [`Duration`] (saturating at `u64::MAX` µs).
    #[inline]
    pub fn record(&self, elapsed: Duration) {
        self.record_us(u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX));
    }

    /// Returns the number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Returns an owned snapshot of the current bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum_us: self.sum_us.load(Ordering::Relaxed),
            max_us: self.max_us.load(Ordering::Relaxed),
            buckets: (0..HISTOGRAM_BUCKETS)
                .map(|i| (bucket_upper_us(i), self.counts[i].load(Ordering::Relaxed)))
                .collect(),
        }
    }
}

/// An RAII span timer: measures from [`Span::enter`] to drop and records
/// the elapsed microseconds into the histogram it was entered on.
///
/// ```
/// use dsig_obs::{Histogram, Span};
/// let latency = Histogram::new();
/// {
///     let _span = Span::enter(&latency);
///     // ... timed work ...
/// }
/// assert_eq!(latency.count(), 1);
/// ```
#[derive(Debug)]
pub struct Span<'a> {
    histogram: &'a Histogram,
    start: Instant,
}

impl<'a> Span<'a> {
    /// Starts timing against `histogram`.
    pub fn enter(histogram: &'a Histogram) -> Self {
        Span {
            histogram,
            start: Instant::now(),
        }
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        self.histogram.record(self.start.elapsed());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::new();
        assert_eq!(c.get(), 0);
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn gauge_is_last_write_wins_and_bit_exact() {
        let g = Gauge::new();
        assert_eq!(g.get(), 0.0);
        g.set(1.5);
        g.set(-0.0);
        assert_eq!(g.get().to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn histogram_bucket_boundaries() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 0);
        assert_eq!(Histogram::bucket_index(2), 1);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 2);
        assert_eq!(Histogram::bucket_index(5), 3);
        assert_eq!(Histogram::bucket_index(1 << 26), 26);
        assert_eq!(Histogram::bucket_index((1 << 26) + 1), HISTOGRAM_BUCKETS - 1);
        assert_eq!(Histogram::bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn histogram_snapshot_counts_and_sum() {
        let h = Histogram::new();
        h.record_us(1);
        h.record_us(100);
        h.record_us(100);
        h.record_us(u64::MAX);
        let snap = h.snapshot();
        assert_eq!(snap.count, 4);
        assert_eq!(snap.sum_us, 1u64.wrapping_add(200).wrapping_add(u64::MAX));
        assert_eq!(snap.max_us, u64::MAX, "the exact max survives the overflow bucket");
        assert_eq!(snap.buckets.len(), HISTOGRAM_BUCKETS);
        assert_eq!(snap.buckets[0], (1, 1));
        assert_eq!(snap.buckets[7], (128, 2));
        assert_eq!(snap.buckets[HISTOGRAM_BUCKETS - 1], (u64::MAX, 1));
    }

    #[test]
    fn span_records_one_sample_on_drop() {
        let h = Histogram::new();
        {
            let _span = Span::enter(&h);
        }
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn concurrent_updates_are_lossless() {
        use std::sync::Arc;
        let c = Arc::new(Counter::new());
        let h = Arc::new(Histogram::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let (c, h) = (Arc::clone(&c), Arc::clone(&h));
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        c.inc();
                        h.record_us(i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.get(), 4000);
        assert_eq!(h.count(), 4000);
        assert_eq!(h.snapshot().buckets.iter().map(|&(_, n)| n).sum::<u64>(), 4000);
    }
}
