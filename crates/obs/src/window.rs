//! Windowed rates and declarative health verdicts.
//!
//! Lifetime counters answer "how much since boot"; an operator watching a
//! fleet needs "how much in the last few seconds". A [`RateWindow`] turns
//! successive observations of one monotonic counter into a per-second rate
//! over a fixed sliding window of buckets, deterministically — callers pass
//! explicit timestamps, so tests need no clock.
//!
//! A [`SloPolicy`] then compresses a whole scrape into one answer: given a
//! [`HealthSample`] (requests, errors, tail latency, backed-off backends)
//! it produces a [`HealthReport`] with a PASS/DEGRADED/FAIL
//! [`HealthStatus`] and the specific findings that drove the verdict —
//! the body of the `DSHC` health frame.

/// A fixed-bucket sliding window deriving per-interval deltas from a
/// monotonic counter.
///
/// Feed it `(now_us, counter_total)` pairs via [`RateWindow::observe`];
/// [`RateWindow::rate_per_sec`] averages the deltas that landed inside the
/// window. The first observation only primes the baseline (a process's
/// lifetime total must not count as a burst). Stale buckets are zeroed
/// lazily, so an idle counter decays to a zero rate after one window.
#[derive(Debug, Clone)]
pub struct RateWindow {
    bucket_us: u64,
    /// `(bucket index, accumulated delta)` per slot; a slot is valid only
    /// while its index is within the window of the queried `now_us`.
    buckets: Vec<(u64, u64)>,
    last_total: u64,
    primed: bool,
}

impl RateWindow {
    /// Creates a window of `buckets.max(1)` buckets of
    /// `bucket_us.max(1)` µs each.
    pub fn new(bucket_us: u64, buckets: usize) -> Self {
        RateWindow {
            bucket_us: bucket_us.max(1),
            buckets: vec![(0, 0); buckets.max(1)],
            last_total: 0,
            primed: false,
        }
    }

    /// Total span of the window, in µs.
    pub fn span_us(&self) -> u64 {
        self.bucket_us.saturating_mul(self.buckets.len() as u64)
    }

    /// Records the counter's current `total` at time `now_us`. Deltas are
    /// saturating, so a counter that restarts (new process scraped under
    /// the same name) contributes zero instead of wrapping.
    pub fn observe(&mut self, now_us: u64, total: u64) {
        if !self.primed {
            self.primed = true;
            self.last_total = total;
            return;
        }
        let delta = total.saturating_sub(self.last_total);
        self.last_total = total;
        let index = now_us / self.bucket_us;
        let slot = (index % self.buckets.len() as u64) as usize;
        if self.buckets[slot].0 != index {
            self.buckets[slot] = (index, 0);
        }
        self.buckets[slot].1 = self.buckets[slot].1.saturating_add(delta);
    }

    /// The average per-second rate over the window ending at `now_us`.
    /// Buckets older than the window are ignored; the still-filling
    /// current bucket is included, so the rate is a slight underestimate
    /// while the newest bucket is partial.
    pub fn rate_per_sec(&self, now_us: u64) -> f64 {
        let current = now_us / self.bucket_us;
        let oldest = current.saturating_sub(self.buckets.len() as u64 - 1);
        let total: u64 = self
            .buckets
            .iter()
            .filter(|&&(index, _)| index >= oldest && index <= current)
            .map(|&(_, delta)| delta)
            .fold(0, u64::saturating_add);
        total as f64 * 1_000_000.0 / self.span_us() as f64
    }
}

/// Declarative service-level objectives a fleet scrape is judged against.
///
/// `Copy` so it can ride inside copyable config structs (e.g. the router's
/// `RouterConfig`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloPolicy {
    /// Maximum tolerated `errors / requests` ratio before the verdict
    /// degrades.
    pub max_error_rate: f64,
    /// Maximum tolerated 99th-percentile request latency, in µs.
    pub max_p99_us: u64,
    /// Maximum tolerated number of simultaneously backed-off backends.
    pub max_backed_off: u32,
}

impl Default for SloPolicy {
    /// One backed-off backend, a 1% error rate or a 10 s request p99
    /// already degrades the verdict.
    fn default() -> Self {
        SloPolicy {
            max_error_rate: 0.01,
            max_p99_us: 10_000_000,
            max_backed_off: 0,
        }
    }
}

/// The verdict of a health check, worst first when merging.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HealthStatus {
    /// Every objective is met.
    Pass,
    /// At least one objective is violated but the service is still doing
    /// useful work.
    Degraded,
    /// The service is not doing useful work (every backend backed off, or
    /// every request erroring).
    Fail,
}

impl HealthStatus {
    /// Upper-case display name (`PASS`, `DEGRADED`, `FAIL`).
    pub fn as_str(self) -> &'static str {
        match self {
            HealthStatus::Pass => "PASS",
            HealthStatus::Degraded => "DEGRADED",
            HealthStatus::Fail => "FAIL",
        }
    }

    /// The status's wire tag.
    pub fn to_u8(self) -> u8 {
        match self {
            HealthStatus::Pass => 0,
            HealthStatus::Degraded => 1,
            HealthStatus::Fail => 2,
        }
    }

    /// Decodes a wire tag written by [`HealthStatus::to_u8`]; `None` on an
    /// unknown tag.
    pub fn from_u8(tag: u8) -> Option<HealthStatus> {
        match tag {
            0 => Some(HealthStatus::Pass),
            1 => Some(HealthStatus::Degraded),
            2 => Some(HealthStatus::Fail),
            _ => None,
        }
    }
}

/// The operational facts a [`SloPolicy`] judges: one fleet scrape boiled
/// down to five numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HealthSample {
    /// Requests handled (fleet-wide lifetime total).
    pub requests: u64,
    /// Requests answered with an error.
    pub errors: u64,
    /// 99th-percentile request latency, in µs.
    pub p99_us: u64,
    /// Backends currently backed off (unreachable or failing).
    pub backed_off: u32,
    /// Backends in the fleet (0 for a single-process health check).
    pub backends: u32,
}

/// The result of judging a [`HealthSample`] against a [`SloPolicy`]: the
/// verdict plus the facts and findings that produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthReport {
    /// The verdict.
    pub status: HealthStatus,
    /// Observed `errors / requests` ratio (0 when no requests were seen).
    pub error_rate: f64,
    /// Observed 99th-percentile request latency, in µs.
    pub p99_us: u64,
    /// Backends currently backed off.
    pub backed_off: u32,
    /// Backends in the fleet.
    pub backends: u32,
    /// Fleet membership epoch: bumped by the routing tier on every
    /// join/leave/drain, `0` for a single-process health check (and for
    /// policies that never learn an epoch — [`SloPolicy::evaluate`] always
    /// reports `0`; the tier that owns the membership overwrites it).
    pub epoch: u64,
    /// One line per violated objective; empty for a PASS.
    pub findings: Vec<String>,
}

impl HealthReport {
    /// Renders the report as human-readable text: a one-line summary plus
    /// one indented line per finding.
    pub fn render(&self) -> String {
        let mut out = format!(
            "health {} error_rate {:.4} p99_us {} backed_off {}/{} epoch {}\n",
            self.status.as_str(),
            self.error_rate,
            self.p99_us,
            self.backed_off,
            self.backends,
            self.epoch
        );
        for finding in &self.findings {
            out.push_str("  - ");
            out.push_str(finding);
            out.push('\n');
        }
        out
    }
}

impl SloPolicy {
    /// Judges `sample`: FAIL when the service is doing no useful work
    /// (every backend backed off, or every request erroring), DEGRADED
    /// when any objective is violated, PASS otherwise. Findings name each
    /// violated objective.
    pub fn evaluate(&self, sample: HealthSample) -> HealthReport {
        let error_rate = if sample.requests == 0 {
            0.0
        } else {
            sample.errors as f64 / sample.requests as f64
        };
        let mut findings = Vec::new();
        if error_rate > self.max_error_rate {
            findings.push(format!(
                "error rate {:.4} exceeds the {:.4} objective ({} of {} requests)",
                error_rate, self.max_error_rate, sample.errors, sample.requests
            ));
        }
        if sample.p99_us > self.max_p99_us {
            findings.push(format!(
                "request p99 {}us exceeds the {}us objective",
                sample.p99_us, self.max_p99_us
            ));
        }
        if sample.backed_off > self.max_backed_off {
            findings.push(format!(
                "{} of {} backends backed off (at most {} tolerated)",
                sample.backed_off, sample.backends, self.max_backed_off
            ));
        }
        let all_backends_down = sample.backends > 0 && sample.backed_off >= sample.backends;
        if all_backends_down {
            findings.push("every backend is backed off".to_owned());
        }
        let all_requests_failing = sample.requests > 0 && sample.errors >= sample.requests;
        if all_requests_failing {
            findings.push("every request errored".to_owned());
        }
        let status = if all_backends_down || all_requests_failing {
            HealthStatus::Fail
        } else if findings.is_empty() {
            HealthStatus::Pass
        } else {
            HealthStatus::Degraded
        };
        HealthReport {
            status,
            error_rate,
            p99_us: sample.p99_us,
            backed_off: sample.backed_off,
            backends: sample.backends,
            epoch: 0,
            findings,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_observation_only_primes() {
        let mut w = RateWindow::new(1_000_000, 5);
        w.observe(0, 1_000_000); // a long-lived counter joins the window
        assert_eq!(w.rate_per_sec(0), 0.0);
        w.observe(1_000_000, 1_000_100);
        // 100 events over a 5-second window.
        assert!((w.rate_per_sec(1_000_000) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn rate_decays_as_buckets_age_out() {
        let mut w = RateWindow::new(1_000_000, 2);
        w.observe(0, 0);
        w.observe(500_000, 100); // bucket 0
        assert!((w.rate_per_sec(500_000) - 50.0).abs() < 1e-9);
        // Two seconds later bucket 0 has aged out of the 2-bucket window.
        assert_eq!(w.rate_per_sec(2_500_000), 0.0);
        // And its slot is reused without double counting.
        w.observe(2_500_000, 130);
        assert!((w.rate_per_sec(2_500_000) - 15.0).abs() < 1e-9);
    }

    #[test]
    fn counter_restart_contributes_zero() {
        let mut w = RateWindow::new(1_000_000, 2);
        w.observe(0, 500);
        w.observe(100, 10); // the scraped process restarted
        assert_eq!(w.rate_per_sec(100), 0.0);
        w.observe(200, 30);
        assert!(w.rate_per_sec(200) > 0.0);
    }

    #[test]
    fn healthy_sample_passes() {
        let report = SloPolicy::default().evaluate(HealthSample {
            requests: 1000,
            errors: 5,
            p99_us: 20_000,
            backed_off: 0,
            backends: 3,
        });
        assert_eq!(report.status, HealthStatus::Pass);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
        assert!((report.error_rate - 0.005).abs() < 1e-12);
        // No traffic at all is also a pass, not a division by zero.
        let idle = SloPolicy::default().evaluate(HealthSample::default());
        assert_eq!(idle.status, HealthStatus::Pass);
        assert_eq!(idle.error_rate, 0.0);
    }

    #[test]
    fn one_backed_off_backend_degrades_by_default() {
        let report = SloPolicy::default().evaluate(HealthSample {
            requests: 100,
            errors: 0,
            p99_us: 1_000,
            backed_off: 1,
            backends: 3,
        });
        assert_eq!(report.status, HealthStatus::Degraded);
        assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
        assert!(report.findings[0].contains("1 of 3 backends"), "{:?}", report.findings);
    }

    #[test]
    fn error_rate_and_p99_objectives_degrade() {
        let policy = SloPolicy {
            max_error_rate: 0.10,
            max_p99_us: 500,
            max_backed_off: 1,
        };
        let report = policy.evaluate(HealthSample {
            requests: 100,
            errors: 20,
            p99_us: 800,
            backed_off: 1,
            backends: 4,
        });
        assert_eq!(report.status, HealthStatus::Degraded);
        assert_eq!(report.findings.len(), 2, "{:?}", report.findings);
    }

    #[test]
    fn catastrophic_samples_fail() {
        let every_backend = SloPolicy::default().evaluate(HealthSample {
            requests: 10,
            errors: 0,
            p99_us: 1,
            backed_off: 3,
            backends: 3,
        });
        assert_eq!(every_backend.status, HealthStatus::Fail);
        let every_request = SloPolicy::default().evaluate(HealthSample {
            requests: 10,
            errors: 10,
            p99_us: 1,
            backed_off: 0,
            backends: 3,
        });
        assert_eq!(every_request.status, HealthStatus::Fail);
    }

    #[test]
    fn status_round_trips_and_orders() {
        for status in [HealthStatus::Pass, HealthStatus::Degraded, HealthStatus::Fail] {
            assert_eq!(HealthStatus::from_u8(status.to_u8()), Some(status));
        }
        assert_eq!(HealthStatus::from_u8(9), None);
        assert!(HealthStatus::Fail > HealthStatus::Degraded);
        assert!(HealthStatus::Degraded > HealthStatus::Pass);
    }

    #[test]
    fn report_renders_summary_and_findings() {
        let report = SloPolicy::default().evaluate(HealthSample {
            requests: 100,
            errors: 50,
            p99_us: 1,
            backed_off: 1,
            backends: 3,
        });
        let text = report.render();
        assert!(text.starts_with("health DEGRADED"), "{text}");
        assert!(text.lines().count() >= 2, "{text}");
        assert!(text.contains("error rate"), "{text}");
    }
}
