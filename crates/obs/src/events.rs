//! Structured operational events on top of the tracing substrate.
//!
//! Metrics say *how much* and traces say *where the time went*; events say
//! *what happened*: a backend was marked backed off, a pipelined client
//! reconnected and resubmitted, a connection was poisoned. An [`EventSink`]
//! is a bounded lock-per-slot ring of [`EventRecord`]s mirroring the span
//! ring in [`crate::Tracer`] — emitting an event is one relaxed `fetch_add`
//! plus one uncontended per-slot mutex, and the ring overwrites the oldest
//! record instead of blocking when full (counting the overwrite in
//! [`EventSink::dropped`], surfaced as the `obs.dropped_events` counter).
//!
//! Each record captures the ambient [`crate::TraceContext`]'s trace id at
//! emission time, so operational history correlates with the span log: the
//! reconnect event and the spans of the request that triggered it share a
//! trace id. The [`EventLog`] `DSEL` codec puts drained events on the wire
//! for the `DSEX`/`DSED` scrape pair.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use dsig_core::wire::{self, ByteReader};
use dsig_core::{DsigError, Result};

use crate::trace;

/// Magic bytes of a serialized event log.
pub const EVENT_LOG_MAGIC: [u8; 4] = *b"DSEL";
/// Current event-log format version.
pub const EVENT_LOG_VERSION: u16 = 1;

/// Severity of an operational event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EventLevel {
    /// An expected operational transition (e.g. a backend recovered).
    Info,
    /// A degraded-but-handled condition (e.g. reconnect and resubmit).
    Warn,
    /// A fault that lost work or state (e.g. a poisoned connection).
    Error,
}

impl EventLevel {
    /// The level's wire tag.
    pub fn to_u8(self) -> u8 {
        match self {
            EventLevel::Info => 0,
            EventLevel::Warn => 1,
            EventLevel::Error => 2,
        }
    }

    /// Decodes a wire tag written by [`EventLevel::to_u8`].
    ///
    /// # Errors
    /// Returns [`DsigError::Corrupt`] on an unknown tag.
    pub fn from_u8(tag: u8) -> Result<EventLevel> {
        match tag {
            0 => Ok(EventLevel::Info),
            1 => Ok(EventLevel::Warn),
            2 => Ok(EventLevel::Error),
            other => Err(DsigError::Corrupt {
                context: "event log",
                detail: format!("unknown event level {other}"),
            }),
        }
    }

    /// Lower-case display name (`info`, `warn`, `error`).
    pub fn as_str(self) -> &'static str {
        match self {
            EventLevel::Info => "info",
            EventLevel::Warn => "warn",
            EventLevel::Error => "error",
        }
    }
}

/// One recorded operational event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventRecord {
    /// Severity of the event.
    pub level: EventLevel,
    /// Which tier emitted it, e.g. `router`.
    pub tier: String,
    /// Stable machine-readable name, e.g. `backend.backed_off`.
    pub name: String,
    /// Human-readable description of what happened.
    pub message: String,
    /// Free-form `key=value` context (backend label, attempt count, …).
    pub fields: Vec<(String, String)>,
    /// Emission time, in µs since the recording process's epoch.
    pub at_us: u64,
    /// Trace id of the ambient [`crate::TraceContext`] at emission time
    /// (0 when no trace was active).
    pub trace_id: u64,
}

struct EventSinkInner {
    slots: Vec<Mutex<Option<EventRecord>>>,
    cursor: AtomicUsize,
    dropped: AtomicU64,
}

/// A cheaply cloneable event recorder: a bounded ring of [`EventRecord`]s.
///
/// Clones share the ring. When the ring is full the oldest event is
/// overwritten and counted in [`EventSink::dropped`] — events are a
/// diagnostic side channel and must never block or grow without bound.
#[derive(Clone)]
pub struct EventSink {
    inner: Arc<EventSinkInner>,
}

impl std::fmt::Debug for EventSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventSink")
            .field("capacity", &self.inner.slots.len())
            .finish()
    }
}

impl Default for EventSink {
    fn default() -> Self {
        EventSink::with_capacity(EventSink::DEFAULT_CAPACITY)
    }
}

impl EventSink {
    /// Default ring capacity, in events.
    pub const DEFAULT_CAPACITY: usize = 1024;

    /// Creates a sink with the default ring capacity.
    pub fn new() -> Self {
        EventSink::default()
    }

    /// Creates a sink holding at most `capacity.max(1)` events.
    pub fn with_capacity(capacity: usize) -> Self {
        EventSink {
            inner: Arc::new(EventSinkInner {
                slots: (0..capacity.max(1)).map(|_| Mutex::new(None)).collect(),
                cursor: AtomicUsize::new(0),
                dropped: AtomicU64::new(0),
            }),
        }
    }

    /// The ring capacity, in events.
    pub fn capacity(&self) -> usize {
        self.inner.slots.len()
    }

    /// Number of events overwritten before being drained. Surfaced in
    /// snapshots as the `obs.dropped_events` counter.
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    /// Records one event, stamping the emission time and the ambient
    /// [`crate::TraceContext`]'s trace id.
    pub fn emit(&self, level: EventLevel, tier: &str, name: &str, message: impl Into<String>, fields: &[(&str, &str)]) {
        let record = EventRecord {
            level,
            tier: tier.to_owned(),
            name: name.to_owned(),
            message: message.into(),
            fields: fields.iter().map(|&(k, v)| (k.to_owned(), v.to_owned())).collect(),
            at_us: trace::now_us(),
            trace_id: trace::current_context().trace_id,
        };
        let slot = self.inner.cursor.fetch_add(1, Ordering::Relaxed) % self.inner.slots.len();
        let mut guard = self.inner.slots[slot]
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if guard.is_some() {
            self.inner.dropped.fetch_add(1, Ordering::Relaxed);
        }
        *guard = Some(record);
    }

    /// Takes every buffered event out of the ring, ordered by
    /// `(at_us, trace_id, name)`. Events emitted concurrently with the
    /// drain land in the next one — a drain is consuming, not idempotent.
    pub fn drain(&self) -> Vec<EventRecord> {
        let mut events: Vec<EventRecord> = self
            .inner
            .slots
            .iter()
            .filter_map(|slot| slot.lock().unwrap_or_else(|poisoned| poisoned.into_inner()).take())
            .collect();
        events.sort_by(|a, b| (a.at_us, a.trace_id, &a.name).cmp(&(b.at_us, b.trace_id, &b.name)));
        events
    }
}

/// A set of events in transit: the `DSEL` wire format serve and router
/// answer event scrapes with.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EventLog {
    /// The drained events, in drain order.
    pub events: Vec<EventRecord>,
}

impl EventLog {
    /// Serializes the log (magic `DSEL`, version 1).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(10 + 64 * self.events.len());
        wire::put_header(&mut out, EVENT_LOG_MAGIC, EVENT_LOG_VERSION);
        wire::put_u32(&mut out, self.events.len() as u32);
        for event in &self.events {
            out.push(event.level.to_u8());
            wire::put_str(&mut out, &event.tier);
            wire::put_str(&mut out, &event.name);
            wire::put_str(&mut out, &event.message);
            wire::put_u64(&mut out, event.at_us);
            wire::put_u64(&mut out, event.trace_id);
            wire::put_u32(&mut out, event.fields.len() as u32);
            for (key, value) in &event.fields {
                wire::put_str(&mut out, key);
                wire::put_str(&mut out, value);
            }
        }
        out
    }

    /// Decodes a log serialized by [`EventLog::to_bytes`]. Never panics on
    /// malformed input.
    ///
    /// # Errors
    /// Returns [`DsigError::Truncated`] / [`DsigError::Corrupt`] on framing
    /// errors or an unknown level tag.
    pub fn from_bytes(bytes: &[u8]) -> Result<EventLog> {
        let mut r = ByteReader::new(bytes, "event log");
        r.header(EVENT_LOG_MAGIC, EVENT_LOG_VERSION)?;
        let count = r.u32()? as usize;
        // Minimum event: level byte, three empty strings (4 each), two
        // 8-byte integers and a 4-byte field count.
        r.check_count(count, 33)?;
        let mut events = Vec::with_capacity(count);
        for _ in 0..count {
            let level = EventLevel::from_u8(r.u8()?)?;
            let tier = r.string()?;
            let name = r.string()?;
            let message = r.string()?;
            let at_us = r.u64()?;
            let trace_id = r.u64()?;
            let n_fields = r.u32()? as usize;
            // Minimum field: two empty length-prefixed strings.
            r.check_count(n_fields, 8)?;
            let mut fields = Vec::with_capacity(n_fields);
            for _ in 0..n_fields {
                let key = r.string()?;
                let value = r.string()?;
                fields.push((key, value));
            }
            events.push(EventRecord {
                level,
                tier,
                name,
                message,
                fields,
                at_us,
                trace_id,
            });
        }
        r.finish()?;
        Ok(EventLog { events })
    }

    /// Renders the log as human-readable text, one event per line (the
    /// format CI uploads as the `EVENTS_*.txt` artifact).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for event in &self.events {
            out.push_str(&format!(
                "{:>12}us {:<5} [{}] {} {}",
                event.at_us,
                event.level.as_str(),
                event.tier,
                event.name,
                event.message
            ));
            for (key, value) in &event.fields {
                out.push_str(&format!(" {key}={value}"));
            }
            if event.trace_id != 0 {
                out.push_str(&format!(" trace={:016x}", event.trace_id));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{with_context, TraceContext};

    fn event(at: u64, name: &str) -> EventRecord {
        EventRecord {
            level: EventLevel::Warn,
            tier: "test".into(),
            name: name.into(),
            message: "m".into(),
            fields: vec![],
            at_us: at,
            trace_id: 0,
        }
    }

    #[test]
    fn emit_captures_ambient_trace_and_fields() {
        let sink = EventSink::new();
        let ctx = TraceContext {
            trace_id: 0xABCD,
            parent_span: 7,
            sampled: true,
        };
        {
            let _guard = with_context(ctx);
            sink.emit(
                EventLevel::Warn,
                "router",
                "backend.backed_off",
                "b down",
                &[("backend", "local-1")],
            );
        }
        sink.emit(EventLevel::Info, "router", "backend.recovered", "b up", &[]);
        let events = sink.drain();
        assert_eq!(events.len(), 2);
        let down = events.iter().find(|e| e.name == "backend.backed_off").unwrap();
        assert_eq!(down.trace_id, 0xABCD);
        assert_eq!(down.fields, vec![("backend".to_string(), "local-1".to_string())]);
        let up = events.iter().find(|e| e.name == "backend.recovered").unwrap();
        assert_eq!(up.trace_id, 0);
        // Drain takes: a second drain is empty.
        assert!(sink.drain().is_empty());
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let sink = EventSink::with_capacity(4);
        for i in 0..10 {
            sink.emit(EventLevel::Info, "test", "e", format!("n{i}"), &[]);
        }
        assert_eq!(sink.dropped(), 6);
        let events = sink.drain();
        assert_eq!(events.len(), 4);
        for i in 6..10 {
            assert!(
                events.iter().any(|e| e.message == format!("n{i}")),
                "event {i} must survive"
            );
        }
        // Drops accumulate; drains do not reset the counter.
        sink.emit(EventLevel::Info, "test", "e", "again", &[]);
        assert_eq!(sink.dropped(), 6);
    }

    #[test]
    fn clones_share_the_ring() {
        let sink = EventSink::new();
        sink.clone().emit(EventLevel::Error, "test", "from-clone", "x", &[]);
        assert_eq!(sink.drain().len(), 1);
    }

    #[test]
    fn log_round_trips_and_rejects_abuse() {
        let mut rich = event(10, "reconnect");
        rich.level = EventLevel::Error;
        rich.trace_id = 99;
        rich.fields = vec![
            ("addr".into(), "127.0.0.1:1".into()),
            ("resubmitted".into(), "3".into()),
        ];
        let log = EventLog {
            events: vec![event(5, "backoff"), rich],
        };
        let bytes = log.to_bytes();
        let back = EventLog::from_bytes(&bytes).unwrap();
        assert_eq!(back, log);
        assert_eq!(back.to_bytes(), bytes);
        // The empty log is legal.
        assert!(EventLog::from_bytes(&EventLog::default().to_bytes())
            .unwrap()
            .events
            .is_empty());
        // Truncation at every length is a clean error.
        for keep in 0..bytes.len() {
            assert!(EventLog::from_bytes(&bytes[..keep]).is_err(), "prefix of {keep} bytes");
        }
        // Trailing bytes are corruption.
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(EventLog::from_bytes(&trailing).is_err());
        // An unknown level tag is corruption: the tag of the first event
        // sits right after the header (6) and the count (4).
        let mut bad_level = bytes.clone();
        bad_level[10] = 9;
        assert!(EventLog::from_bytes(&bad_level).is_err());
    }

    #[test]
    fn render_is_one_line_per_event() {
        let mut rich = event(10, "mux.reconnect");
        rich.trace_id = 0xFF;
        rich.fields = vec![("resubmitted".into(), "2".into())];
        let log = EventLog {
            events: vec![event(5, "plain"), rich],
        };
        let text = log.render();
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("mux.reconnect"), "{text}");
        assert!(text.contains("resubmitted=2"), "{text}");
        assert!(text.contains("trace=00000000000000ff"), "{text}");
    }
}
