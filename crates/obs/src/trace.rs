//! Causal, per-request tracing on top of the metrics substrate.
//!
//! The aggregate metrics of [`crate::Registry`] say *how much* time a tier
//! spends per phase; traces say *which request* spent it *where*. A
//! [`Tracer`] hands out sampled [`TraceContext`]s, records parent/child
//! [`SpanRecord`]s into a bounded ring of slots, and exports them as a
//! versioned binary [`TraceLog`] (magic `DSTL`) that [`TraceTree::render`]
//! prints as an indented span tree with per-span self/total time.
//!
//! The design constraints mirror the metric primitives:
//!
//! 1. **Bit-identity neutrality.** Spans are a side channel; nothing here
//!    feeds back into scoring, routing or scheduling. An unsampled span is a
//!    no-op that allocates nothing, so untraced traffic stays on the old hot
//!    path.
//! 2. **Lock-free-ish recording.** Finishing a span claims a slot with one
//!    relaxed atomic `fetch_add` and takes one uncontended per-slot mutex —
//!    recorders never serialize on a shared lock, and the ring overwrites
//!    the oldest span instead of blocking when full.
//! 3. **Std-only.** Ids come from a splitmix64-scrambled process counter,
//!    timestamps from one process-wide monotonic epoch.
//!
//! Cross-tier propagation is *ambient*: [`with_context`] pins a
//! [`TraceContext`] to the current thread and the wire encoders pick it up
//! via [`current_context`], so deep call chains (engine → router → serve)
//! need no extra parameters.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use dsig_core::wire::{self, ByteReader};
use dsig_core::{DsigError, Result};

/// Magic bytes of a serialized trace log.
pub const TRACE_LOG_MAGIC: [u8; 4] = *b"DSTL";
/// Current trace-log format version.
pub const TRACE_LOG_VERSION: u16 = 1;
/// Serialized size of a [`TraceContext`] on the wire: `u64` trace id,
/// `u64` parent span id, `u8` sampled flag.
pub const TRACE_CONTEXT_WIRE_BYTES: usize = 17;

/// The compact causal context propagated across tiers: which trace a
/// request belongs to, which span caused it, and whether spans should be
/// recorded at all.
///
/// [`TraceContext::NONE`] (all zeroes) is the null context old-version
/// frames decode to; it is never sampled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// Id shared by every span of one trace; 0 means "no trace".
    pub trace_id: u64,
    /// Span id of the causing span (0 for a trace root).
    pub parent_span: u64,
    /// Whether spans under this context are recorded.
    pub sampled: bool,
}

impl TraceContext {
    /// The null context: no trace, never sampled.
    pub const NONE: TraceContext = TraceContext {
        trace_id: 0,
        parent_span: 0,
        sampled: false,
    };

    /// Whether spans opened under this context are recorded.
    pub fn is_sampled(&self) -> bool {
        self.sampled && self.trace_id != 0
    }
}

/// Appends a context as its fixed 17-byte wire form.
pub fn put_trace_context(out: &mut Vec<u8>, ctx: TraceContext) {
    wire::put_u64(out, ctx.trace_id);
    wire::put_u64(out, ctx.parent_span);
    out.push(u8::from(ctx.sampled));
}

/// Reads a context written by [`put_trace_context`].
///
/// # Errors
/// Returns [`DsigError::Truncated`] on a short buffer and
/// [`DsigError::Corrupt`] on a sampled flag other than 0 or 1.
pub fn read_trace_context(r: &mut ByteReader<'_>) -> Result<TraceContext> {
    let trace_id = r.u64()?;
    let parent_span = r.u64()?;
    let sampled = match r.u8()? {
        0 => false,
        1 => true,
        other => {
            return Err(DsigError::Corrupt {
                context: "trace context",
                detail: format!("invalid sampled flag {other}"),
            })
        }
    };
    Ok(TraceContext {
        trace_id,
        parent_span,
        sampled,
    })
}

thread_local! {
    static AMBIENT: Cell<TraceContext> = const { Cell::new(TraceContext::NONE) };
}

/// The context pinned to the current thread ([`TraceContext::NONE`] when
/// nothing is pinned). Wire encoders call this to stamp outgoing frames.
pub fn current_context() -> TraceContext {
    AMBIENT.with(Cell::get)
}

/// Pins `ctx` to the current thread until the returned guard drops, when
/// the previously pinned context is restored. Guards nest.
#[must_use = "the context is only pinned while the guard is alive"]
pub fn with_context(ctx: TraceContext) -> ContextGuard {
    let previous = AMBIENT.with(|slot| slot.replace(ctx));
    ContextGuard {
        previous,
        _not_send: std::marker::PhantomData,
    }
}

/// Restores the previously pinned [`TraceContext`] on drop (see
/// [`with_context`]).
#[derive(Debug)]
pub struct ContextGuard {
    previous: TraceContext,
    /// The guard manipulates a thread-local and must drop on the thread
    /// that created it.
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        AMBIENT.with(|slot| slot.set(self.previous));
    }
}

/// Process-wide monotonic epoch all span timestamps are relative to.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds since the process epoch (shared with the event log so
/// span and event timestamps are directly comparable).
pub(crate) fn now_us() -> u64 {
    u64::try_from(epoch().elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// splitmix64: a cheap, well-mixed scrambler for id allocation.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Allocates a process-unique nonzero id. Seeding the counter with the
/// process id keeps ids from different processes of one fleet distinct,
/// so stitched multi-process traces do not collide.
fn next_id() -> u64 {
    static COUNTER: AtomicU64 = AtomicU64::new(1);
    loop {
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let id = splitmix64(n ^ (u64::from(std::process::id()) << 32));
        if id != 0 {
            return id;
        }
    }
}

/// One finished span: a named, tier-tagged interval of one trace with
/// key=value annotations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Trace this span belongs to (never 0).
    pub trace_id: u64,
    /// This span's id (never 0).
    pub span_id: u64,
    /// Id of the parent span (0 for a trace root).
    pub parent_span: u64,
    /// What the span measures, e.g. `router.forward`.
    pub name: String,
    /// Which tier recorded it, e.g. `router`.
    pub tier: String,
    /// Start, in µs since the recording process's epoch.
    pub start_us: u64,
    /// End, in µs since the recording process's epoch (`>= start_us`).
    pub end_us: u64,
    /// Free-form `key=value` annotations (backend id, chunk index, …).
    pub annotations: Vec<(String, String)>,
}

impl SpanRecord {
    /// The span's duration in µs.
    pub fn total_us(&self) -> u64 {
        self.end_us - self.start_us
    }
}

struct TracerInner {
    slots: Vec<Mutex<Option<SpanRecord>>>,
    cursor: AtomicUsize,
    dropped: AtomicU64,
}

/// A cheaply cloneable span recorder: a bounded ring of finished spans.
///
/// Clones share the ring. When the ring is full the oldest span is
/// overwritten — tracing is a diagnostic side channel and must never
/// block or grow without bound.
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("capacity", &self.inner.slots.len())
            .finish()
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::with_capacity(Tracer::DEFAULT_CAPACITY)
    }
}

impl Tracer {
    /// Default ring capacity, in spans.
    pub const DEFAULT_CAPACITY: usize = 4096;

    /// Creates a tracer with the default ring capacity.
    pub fn new() -> Self {
        Tracer::default()
    }

    /// Creates a tracer holding at most `capacity.max(1)` spans.
    pub fn with_capacity(capacity: usize) -> Self {
        Tracer {
            inner: Arc::new(TracerInner {
                slots: (0..capacity.max(1)).map(|_| Mutex::new(None)).collect(),
                cursor: AtomicUsize::new(0),
                dropped: AtomicU64::new(0),
            }),
        }
    }

    /// The ring capacity, in spans.
    pub fn capacity(&self) -> usize {
        self.inner.slots.len()
    }

    /// Number of spans overwritten before being drained. Surfaced in
    /// snapshots as the `obs.dropped_spans` counter.
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    /// Starts a new sampled trace, returning the root context to open the
    /// first span under.
    pub fn start_trace(&self) -> TraceContext {
        TraceContext {
            trace_id: next_id(),
            parent_span: 0,
            sampled: true,
        }
    }

    /// Opens a span named `name` on tier `tier` under `parent`. If the
    /// parent context is unsampled, the returned span is a no-op: nothing
    /// is allocated and nothing is recorded on drop.
    pub fn span(&self, name: &str, tier: &str, parent: TraceContext) -> ActiveSpan {
        if !parent.is_sampled() {
            return ActiveSpan { state: None };
        }
        ActiveSpan {
            state: Some(ActiveSpanState {
                tracer: self.clone(),
                record: SpanRecord {
                    trace_id: parent.trace_id,
                    span_id: next_id(),
                    parent_span: parent.parent_span,
                    name: name.to_owned(),
                    tier: tier.to_owned(),
                    start_us: now_us(),
                    end_us: 0,
                    annotations: Vec::new(),
                },
            }),
        }
    }

    fn record(&self, span: SpanRecord) {
        let slot = self.inner.cursor.fetch_add(1, Ordering::Relaxed) % self.inner.slots.len();
        // Slot mutexes are uncontended unless two recorders land on the
        // same slot in one ring revolution; either way the lock is held
        // for one store.
        let mut guard = self.inner.slots[slot]
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if guard.is_some() {
            self.inner.dropped.fetch_add(1, Ordering::Relaxed);
        }
        *guard = Some(span);
    }

    /// Takes every buffered span out of the ring, ordered by
    /// `(trace_id, start_us, span_id)`. Spans recorded concurrently with
    /// the drain land in the next one.
    pub fn drain(&self) -> Vec<SpanRecord> {
        let mut spans: Vec<SpanRecord> = self
            .inner
            .slots
            .iter()
            .filter_map(|slot| slot.lock().unwrap_or_else(|poisoned| poisoned.into_inner()).take())
            .collect();
        spans.sort_by_key(|a| (a.trace_id, a.start_us, a.span_id));
        spans
    }
}

struct ActiveSpanState {
    tracer: Tracer,
    record: SpanRecord,
}

/// An open span: records itself into its [`Tracer`]'s ring on drop.
/// Unsampled spans carry no state and do nothing.
#[must_use = "a span measures until it is dropped"]
pub struct ActiveSpan {
    state: Option<ActiveSpanState>,
}

impl std::fmt::Debug for ActiveSpan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ActiveSpan")
            .field("sampled", &self.state.is_some())
            .finish()
    }
}

impl ActiveSpan {
    /// The context that makes further spans children of this one
    /// ([`TraceContext::NONE`] for a no-op span).
    pub fn context(&self) -> TraceContext {
        match &self.state {
            Some(state) => TraceContext {
                trace_id: state.record.trace_id,
                parent_span: state.record.span_id,
                sampled: true,
            },
            None => TraceContext::NONE,
        }
    }

    /// Attaches a `key=value` annotation (no-op on an unsampled span; the
    /// value is not even formatted then).
    pub fn annotate(&mut self, key: &str, value: impl std::fmt::Display) {
        if let Some(state) = &mut self.state {
            state.record.annotations.push((key.to_owned(), value.to_string()));
        }
    }
}

impl Drop for ActiveSpan {
    fn drop(&mut self) {
        if let Some(mut state) = self.state.take() {
            state.record.end_us = now_us().max(state.record.start_us);
            state.tracer.record(state.record);
        }
    }
}

/// A set of spans in transit: the `DSTL` wire format serve and router
/// answer trace scrapes with.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceLog {
    /// The exported spans (any order; [`TraceTree::build`] regroups them).
    pub spans: Vec<SpanRecord>,
}

impl TraceLog {
    /// Serializes the log (magic `DSTL`, version 1).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(10 + 80 * self.spans.len());
        wire::put_header(&mut out, TRACE_LOG_MAGIC, TRACE_LOG_VERSION);
        wire::put_u32(&mut out, self.spans.len() as u32);
        for span in &self.spans {
            wire::put_u64(&mut out, span.trace_id);
            wire::put_u64(&mut out, span.span_id);
            wire::put_u64(&mut out, span.parent_span);
            wire::put_str(&mut out, &span.name);
            wire::put_str(&mut out, &span.tier);
            wire::put_u64(&mut out, span.start_us);
            wire::put_u64(&mut out, span.end_us);
            wire::put_u32(&mut out, span.annotations.len() as u32);
            for (key, value) in &span.annotations {
                wire::put_str(&mut out, key);
                wire::put_str(&mut out, value);
            }
        }
        out
    }

    /// Decodes a log serialized by [`TraceLog::to_bytes`]. Never panics on
    /// malformed input.
    ///
    /// # Errors
    /// Returns [`DsigError::Truncated`] / [`DsigError::Corrupt`] on framing
    /// errors, zero trace or span ids, or a span ending before it starts.
    pub fn from_bytes(bytes: &[u8]) -> Result<TraceLog> {
        let corrupt = |detail: String| DsigError::Corrupt {
            context: "trace log",
            detail,
        };
        let mut r = ByteReader::new(bytes, "trace log");
        r.header(TRACE_LOG_MAGIC, TRACE_LOG_VERSION)?;
        let count = r.u32()? as usize;
        // Minimum span: three 8-byte ids, two empty strings (4 each), two
        // 8-byte timestamps and a 4-byte annotation count.
        r.check_count(count, 52)?;
        let mut spans = Vec::with_capacity(count);
        for _ in 0..count {
            let trace_id = r.u64()?;
            let span_id = r.u64()?;
            if trace_id == 0 || span_id == 0 {
                return Err(corrupt(format!("zero id in span (trace {trace_id}, span {span_id})")));
            }
            let parent_span = r.u64()?;
            let name = r.string()?;
            let tier = r.string()?;
            let start_us = r.u64()?;
            let end_us = r.u64()?;
            if end_us < start_us {
                return Err(corrupt(format!(
                    "span {name:?} ends at {end_us}µs before starting at {start_us}µs"
                )));
            }
            let n_annotations = r.u32()? as usize;
            // Minimum annotation: two empty length-prefixed strings.
            r.check_count(n_annotations, 8)?;
            let mut annotations = Vec::with_capacity(n_annotations);
            for _ in 0..n_annotations {
                let key = r.string()?;
                let value = r.string()?;
                annotations.push((key, value));
            }
            spans.push(SpanRecord {
                trace_id,
                span_id,
                parent_span,
                name,
                tier,
                start_us,
                end_us,
                annotations,
            });
        }
        r.finish()?;
        Ok(TraceLog { spans })
    }
}

/// One trace's spans arranged as a parent/child tree, with a text
/// renderer for human consumption.
#[derive(Debug, Clone)]
pub struct TraceTree {
    /// Trace id shared by every span in the tree.
    pub trace_id: u64,
    spans: Vec<SpanRecord>,
    /// `children[i]` = indices into `spans` of span `i`'s children,
    /// ordered by start time.
    children: Vec<Vec<usize>>,
    /// Indices of spans with `parent_span == 0`.
    roots: Vec<usize>,
    /// Indices of spans whose parent id resolves to no span in this trace.
    orphans: Vec<usize>,
}

impl TraceTree {
    /// Groups `spans` by trace id and arranges each group into a tree.
    /// Trees come back ordered by trace id; spans within a tree keep their
    /// causal (parent before child, siblings by start time) order in
    /// [`TraceTree::render`].
    pub fn build(spans: &[SpanRecord]) -> Vec<TraceTree> {
        let mut by_trace: std::collections::BTreeMap<u64, Vec<SpanRecord>> = std::collections::BTreeMap::new();
        for span in spans {
            if span.trace_id != 0 {
                by_trace.entry(span.trace_id).or_default().push(span.clone());
            }
        }
        by_trace
            .into_iter()
            .map(|(trace_id, mut spans)| {
                spans.sort_by_key(|a| (a.start_us, a.span_id));
                let index_of: std::collections::HashMap<u64, usize> =
                    spans.iter().enumerate().map(|(i, s)| (s.span_id, i)).collect();
                let mut children = vec![Vec::new(); spans.len()];
                let mut roots = Vec::new();
                let mut orphans = Vec::new();
                for (i, span) in spans.iter().enumerate() {
                    if span.parent_span == 0 {
                        roots.push(i);
                    } else {
                        match index_of.get(&span.parent_span) {
                            // A span can claim itself as parent only through
                            // corruption; treat that as an orphan too.
                            Some(&p) if p != i => children[p].push(i),
                            _ => orphans.push(i),
                        }
                    }
                }
                TraceTree {
                    trace_id,
                    spans,
                    children,
                    roots,
                    orphans,
                }
            })
            .collect()
    }

    /// Every span of the trace, ordered by start time.
    pub fn spans(&self) -> &[SpanRecord] {
        &self.spans
    }

    /// Number of root spans (`parent_span == 0`).
    pub fn root_count(&self) -> usize {
        self.roots.len()
    }

    /// Number of spans whose parent is missing from this trace.
    pub fn orphan_count(&self) -> usize {
        self.orphans.len()
    }

    /// Looks up a span of this trace by id.
    pub fn find(&self, span_id: u64) -> Option<&SpanRecord> {
        self.spans.iter().find(|s| s.span_id == span_id)
    }

    /// Self time of span `i`: its total minus the totals of its children
    /// (saturating, since child clocks may come from another process).
    fn self_us(&self, i: usize) -> u64 {
        let nested: u64 = self.children[i]
            .iter()
            .map(|&c| self.spans[c].total_us())
            .fold(0, u64::saturating_add);
        self.spans[i].total_us().saturating_sub(nested)
    }

    fn render_span(&self, i: usize, depth: usize, out: &mut String) {
        let span = &self.spans[i];
        out.push_str(&"  ".repeat(depth + 1));
        out.push_str(&format!(
            "{} [{}] total={}us self={}us",
            span.name,
            span.tier,
            span.total_us(),
            self.self_us(i)
        ));
        for (key, value) in &span.annotations {
            out.push_str(&format!(" {key}={value}"));
        }
        out.push('\n');
        for &child in &self.children[i] {
            self.render_span(child, depth + 1, out);
        }
    }

    /// Renders the trace as an indented span tree, one span per line with
    /// total and self µs plus annotations. Orphaned spans (parent missing
    /// from the scrape, e.g. evicted from the ring) are listed at the end.
    pub fn render(&self) -> String {
        let mut out = format!("trace {:016x} ({} spans)\n", self.trace_id, self.spans.len());
        for &root in &self.roots {
            self.render_span(root, 0, &mut out);
        }
        if !self.orphans.is_empty() {
            out.push_str(&format!("  orphaned ({} spans, parent missing):\n", self.orphans.len()));
            for &orphan in &self.orphans {
                self.render_span(orphan, 1, &mut out);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(trace: u64, id: u64, parent: u64, name: &str, start: u64, end: u64) -> SpanRecord {
        SpanRecord {
            trace_id: trace,
            span_id: id,
            parent_span: parent,
            name: name.into(),
            tier: "test".into(),
            start_us: start,
            end_us: end,
            annotations: vec![],
        }
    }

    #[test]
    fn ids_are_nonzero_and_distinct() {
        let a = next_id();
        let b = next_id();
        assert_ne!(a, 0);
        assert_ne!(b, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn ambient_context_nests_and_restores() {
        assert_eq!(current_context(), TraceContext::NONE);
        let outer = TraceContext {
            trace_id: 1,
            parent_span: 2,
            sampled: true,
        };
        let inner = TraceContext {
            trace_id: 1,
            parent_span: 3,
            sampled: true,
        };
        {
            let _outer = with_context(outer);
            assert_eq!(current_context(), outer);
            {
                let _inner = with_context(inner);
                assert_eq!(current_context(), inner);
            }
            assert_eq!(current_context(), outer);
        }
        assert_eq!(current_context(), TraceContext::NONE);
    }

    #[test]
    fn unsampled_spans_are_no_ops() {
        let tracer = Tracer::new();
        {
            let mut span = tracer.span("noop", "test", TraceContext::NONE);
            span.annotate("k", "v");
            assert_eq!(span.context(), TraceContext::NONE);
        }
        // A sampled flag on a zero trace id is still not a sampled context.
        let zero_trace = TraceContext {
            trace_id: 0,
            parent_span: 0,
            sampled: true,
        };
        drop(tracer.span("noop", "test", zero_trace));
        assert!(tracer.drain().is_empty());
    }

    #[test]
    fn spans_record_parentage_and_annotations() {
        let tracer = Tracer::new();
        let root_ctx = tracer.start_trace();
        let child_ctx;
        {
            let mut root = tracer.span("root", "engine", root_ctx);
            root.annotate("chunk", 7);
            child_ctx = root.context();
            drop(tracer.span("child", "router", child_ctx));
        }
        let spans = tracer.drain();
        assert_eq!(spans.len(), 2);
        let root = spans.iter().find(|s| s.name == "root").unwrap();
        let child = spans.iter().find(|s| s.name == "child").unwrap();
        assert_eq!(root.parent_span, 0);
        assert_eq!(root.annotations, vec![("chunk".to_string(), "7".to_string())]);
        assert_eq!(child.trace_id, root.trace_id);
        assert_eq!(child.parent_span, root.span_id);
        assert!(root.end_us >= root.start_us);
        // Drain takes: a second drain is empty.
        assert!(tracer.drain().is_empty());
    }

    #[test]
    fn ring_overwrites_oldest_when_full() {
        let tracer = Tracer::with_capacity(4);
        assert_eq!(tracer.dropped(), 0);
        let ctx = tracer.start_trace();
        for i in 0..10 {
            let mut span = tracer.span("s", "test", ctx);
            span.annotate("i", i);
        }
        assert_eq!(tracer.dropped(), 6, "each overwrite of an undrained span counts");
        let spans = tracer.drain();
        assert_eq!(spans.len(), 4);
        let kept: Vec<&str> = spans.iter().map(|s| s.annotations[0].1.as_str()).collect();
        for i in 6..10 {
            assert!(
                kept.contains(&i.to_string().as_str()),
                "span {i} must survive, kept {kept:?}"
            );
        }
    }

    #[test]
    fn clones_share_the_ring() {
        let tracer = Tracer::new();
        let clone = tracer.clone();
        let ctx = tracer.start_trace();
        drop(clone.span("from-clone", "test", ctx));
        assert_eq!(tracer.drain().len(), 1);
    }

    #[test]
    fn trace_context_wire_form_round_trips() {
        for ctx in [
            TraceContext::NONE,
            TraceContext {
                trace_id: 0xDEAD,
                parent_span: 0xBEEF,
                sampled: true,
            },
        ] {
            let mut out = Vec::new();
            put_trace_context(&mut out, ctx);
            assert_eq!(out.len(), TRACE_CONTEXT_WIRE_BYTES);
            let mut r = ByteReader::new(&out, "test");
            assert_eq!(read_trace_context(&mut r).unwrap(), ctx);
            r.finish().unwrap();
        }
        // A flag beyond 1 is corruption, not a bool cast.
        let mut bad = Vec::new();
        put_trace_context(&mut bad, TraceContext::NONE);
        bad[16] = 7;
        let mut r = ByteReader::new(&bad, "test");
        assert!(matches!(read_trace_context(&mut r), Err(DsigError::Corrupt { .. })));
        // Truncation is a clean error.
        let mut r = ByteReader::new(&bad[..10], "test");
        assert!(read_trace_context(&mut r).is_err());
    }

    #[test]
    fn trace_log_round_trips_and_rejects_abuse() {
        let mut with_annotations = span(5, 2, 1, "child", 10, 30);
        with_annotations.annotations = vec![("backend".into(), "local-1".into()), ("k".into(), "v".into())];
        let log = TraceLog {
            spans: vec![span(5, 1, 0, "root", 0, 50), with_annotations],
        };
        let bytes = log.to_bytes();
        let back = TraceLog::from_bytes(&bytes).unwrap();
        assert_eq!(back, log);
        assert_eq!(back.to_bytes(), bytes);
        // The empty log is legal.
        assert!(TraceLog::from_bytes(&TraceLog::default().to_bytes())
            .unwrap()
            .spans
            .is_empty());
        // Truncation at every length is a clean error.
        for keep in 0..bytes.len() {
            assert!(TraceLog::from_bytes(&bytes[..keep]).is_err(), "prefix of {keep} bytes");
        }
        // Trailing bytes are corruption.
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(TraceLog::from_bytes(&trailing).is_err());
        // Zero ids and inverted timestamps are corruption.
        let zero_id = TraceLog {
            spans: vec![span(5, 0, 0, "bad", 0, 1)],
        };
        assert!(TraceLog::from_bytes(&zero_id.to_bytes()).is_err());
        let zero_trace = TraceLog {
            spans: vec![span(0, 1, 0, "bad", 0, 1)],
        };
        assert!(TraceLog::from_bytes(&zero_trace.to_bytes()).is_err());
        let inverted = TraceLog {
            spans: vec![span(5, 1, 0, "bad", 10, 3)],
        };
        assert!(TraceLog::from_bytes(&inverted.to_bytes()).is_err());
    }

    #[test]
    fn tree_builds_parentage_and_reports_orphans() {
        let spans = vec![
            span(1, 10, 0, "root", 0, 100),
            span(1, 11, 10, "a", 5, 40),
            span(1, 12, 10, "b", 45, 90),
            span(1, 13, 99, "lost", 50, 60), // parent 99 was evicted
            span(2, 20, 0, "other-root", 0, 10),
        ];
        let trees = TraceTree::build(&spans);
        assert_eq!(trees.len(), 2);
        let first = &trees[0];
        assert_eq!(first.trace_id, 1);
        assert_eq!(first.root_count(), 1);
        assert_eq!(first.orphan_count(), 1);
        assert_eq!(first.spans().len(), 4);
        assert_eq!(first.find(11).unwrap().name, "a");
        assert!(first.find(99).is_none());
        assert_eq!(trees[1].trace_id, 2);
        assert_eq!(trees[1].orphan_count(), 0);
    }

    #[test]
    fn render_indents_children_and_reports_self_time() {
        let mut annotated = span(1, 11, 10, "router.forward", 10, 60);
        annotated.annotations = vec![("backend".into(), "local-0".into())];
        let spans = vec![
            span(1, 10, 0, "engine.chunk", 0, 100),
            annotated,
            span(1, 12, 11, "serve.dispatch", 20, 40),
        ];
        let trees = TraceTree::build(&spans);
        assert_eq!(trees.len(), 1);
        let text = trees[0].render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("trace "), "{text}");
        assert!(lines[1].starts_with("  engine.chunk"), "{text}");
        assert!(lines[1].contains("total=100us self=50us"), "{text}");
        assert!(lines[2].starts_with("    router.forward"), "{text}");
        assert!(lines[2].contains("total=50us self=30us"), "{text}");
        assert!(lines[2].ends_with("backend=local-0"), "{text}");
        assert!(lines[3].starts_with("      serve.dispatch"), "{text}");
        assert!(lines[3].contains("self=20us"), "{text}");
    }

    #[test]
    fn self_clocks_saturate_across_processes() {
        // A child stitched from another process can report a longer total
        // than its parent; self time saturates at zero instead of wrapping.
        let spans = vec![span(1, 1, 0, "parent", 0, 10), span(1, 2, 1, "child", 0, 50)];
        let trees = TraceTree::build(&spans);
        let text = trees[0].render();
        assert!(text.contains("parent [test] total=10us self=0us"), "{text}");
    }
}
