//! # dsig-obs
//!
//! Std-only observability substrate for the digital-signature workspace:
//! atomic [`Counter`]s and [`Gauge`]s, fixed-bin latency [`Histogram`]s with
//! p50/p95/p99 extraction, and RAII [`Span`] timers — behind a cloneable
//! [`Registry`] whose [`MetricsSnapshot`] serializes through
//! `dsig_core::wire` like every other workspace format (magic `DSMS`).
//!
//! Design constraints, in order:
//!
//! 1. **Bit-identity neutrality.** Instrumentation must never influence
//!    signatures, reports or scheduling decisions. Every metric is a plain
//!    relaxed atomic side channel; nothing in this crate feeds back into the
//!    code it observes.
//! 2. **Near-zero hot-path cost.** Recording a counter is one relaxed
//!    `fetch_add`; a histogram sample is three. Handles are `Arc`s resolved
//!    once at construction time — the registry mutex is touched only on
//!    registration and snapshot, never per sample.
//! 3. **No dependencies.** `std` + `dsig_core::wire` only, like the rest of
//!    the workspace.
//!
//! # Example
//!
//! ```
//! use dsig_obs::{Registry, Span};
//!
//! let registry = Registry::new();
//! let requests = registry.counter("serve.requests");
//! let latency = registry.histogram("serve.latency_us");
//!
//! requests.inc();
//! {
//!     let _span = Span::enter(&latency); // records elapsed µs on drop
//! }
//!
//! let snapshot = registry.snapshot();
//! assert_eq!(snapshot.counter("serve.requests"), Some(1));
//! let bytes = snapshot.to_bytes();
//! let back = dsig_obs::MetricsSnapshot::from_bytes(&bytes).unwrap();
//! assert_eq!(back, snapshot);
//! ```

#![warn(missing_docs)]

pub mod events;
pub mod metrics;
pub mod registry;
pub mod snapshot;
pub mod trace;
pub mod window;

pub use events::{EventLevel, EventLog, EventRecord, EventSink, EVENT_LOG_MAGIC, EVENT_LOG_VERSION};
pub use metrics::{Counter, Gauge, Histogram, Span, HISTOGRAM_BUCKETS};
pub use registry::Registry;
pub use snapshot::{
    HistogramSnapshot, MetricDelta, MetricValue, MetricsSnapshot, SnapshotDiff, SNAPSHOT_MAGIC, SNAPSHOT_VERSION,
};
pub use trace::{
    ActiveSpan, SpanRecord, TraceContext, TraceLog, TraceTree, Tracer, TRACE_LOG_MAGIC, TRACE_LOG_VERSION,
};
pub use window::{HealthReport, HealthSample, HealthStatus, RateWindow, SloPolicy};
