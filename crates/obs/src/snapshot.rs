//! The stable scrape format: [`MetricsSnapshot`] and its `DSMS` wire codec.

use dsig_core::wire::{self, ByteReader};
use dsig_core::{DsigError, Result};

/// Magic bytes of a serialized metrics snapshot.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"DSMS";
/// Current snapshot format version. Version 2 added the exact observed
/// maximum to histogram bodies; version-1 snapshots still decode (with a
/// zero, i.e. unknown, maximum).
pub const SNAPSHOT_VERSION: u16 = 2;

const KIND_COUNTER: u8 = 0;
const KIND_GAUGE: u8 = 1;
const KIND_HISTOGRAM: u8 = 2;

/// An owned copy of one histogram's state at scrape time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total number of recorded samples.
    pub count: u64,
    /// Sum of all recorded values, in microseconds (wrapping).
    pub sum_us: u64,
    /// Exact largest recorded value in µs; 0 when no sample has been
    /// recorded (or the snapshot was decoded from a version-1 `DSMS`,
    /// which did not carry it).
    pub max_us: u64,
    /// `(inclusive upper bound in µs, samples)` per bucket, ascending; the
    /// final bucket's bound is `u64::MAX` (overflow).
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// The smallest bucket upper bound (µs) below which at least fraction
    /// `q` of the samples fall, clamped to the exact observed maximum when
    /// one is known — so a tail quantile landing in the overflow bucket
    /// reports the real largest sample instead of saturating at the
    /// bucket's `u64::MAX` bound. Returns 0 for an empty histogram.
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        // max_us == 0 means "unknown" (version-1 snapshot): no clamp then.
        let clamp = |bound: u64| if self.max_us > 0 { bound.min(self.max_us) } else { bound };
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(upper, n) in &self.buckets {
            seen = seen.saturating_add(n);
            if seen >= rank {
                return clamp(upper);
            }
        }
        clamp(u64::MAX)
    }

    /// Median latency bound in µs.
    pub fn p50_us(&self) -> u64 {
        self.quantile_us(0.50)
    }

    /// 95th-percentile latency bound in µs.
    pub fn p95_us(&self) -> u64 {
        self.quantile_us(0.95)
    }

    /// 99th-percentile latency bound in µs.
    pub fn p99_us(&self) -> u64 {
        self.quantile_us(0.99)
    }

    /// Mean recorded value in µs (0 for an empty histogram).
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.count as f64
        }
    }
}

/// The value of one scraped metric.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A monotonically increasing count.
    Counter(u64),
    /// A last-write-wins measurement.
    Gauge(f64),
    /// A latency distribution.
    Histogram(HistogramSnapshot),
}

/// How one metric moved between two snapshots (see
/// [`MetricsSnapshot::diff`]).
#[derive(Debug, Clone, PartialEq)]
pub enum MetricDelta {
    /// A counter's earlier and later values.
    Counter {
        /// Value in the earlier snapshot.
        from: u64,
        /// Value in the later snapshot.
        to: u64,
    },
    /// A gauge's earlier and later values (free to move either way).
    Gauge {
        /// Value in the earlier snapshot.
        from: f64,
        /// Value in the later snapshot.
        to: f64,
    },
    /// A histogram's earlier and later sample counts and sums.
    Histogram {
        /// Sample count in the earlier snapshot.
        count_from: u64,
        /// Sample count in the later snapshot.
        count_to: u64,
        /// Sample sum (µs) in the earlier snapshot.
        sum_from: u64,
        /// Sample sum (µs) in the later snapshot.
        sum_to: u64,
    },
    /// The name is registered as a different metric kind in each snapshot.
    KindChanged,
}

/// Per-metric deltas between two snapshots (see [`MetricsSnapshot::diff`]).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SnapshotDiff {
    /// Deltas for names present in both snapshots, ascending by name.
    pub deltas: Vec<(String, MetricDelta)>,
    /// Names present only in the earlier snapshot.
    pub vanished: Vec<String>,
    /// Names present only in the later snapshot.
    pub appeared: Vec<String>,
}

impl SnapshotDiff {
    /// Everything that violates scrape-over-scrape monotonicity of one
    /// live registry: counters or histogram sample counts that went
    /// backwards, metrics that vanished, and names that changed kind.
    /// Empty for a well-behaved pair of scrapes (gauges are last-write-wins
    /// and new metrics may appear at any time; neither is a violation).
    pub fn monotonicity_violations(&self) -> Vec<String> {
        let mut out = Vec::new();
        for (name, delta) in &self.deltas {
            match delta {
                MetricDelta::Counter { from, to } if to < from => {
                    out.push(format!("counter {name} went backwards: {from} -> {to}"));
                }
                MetricDelta::Histogram {
                    count_from, count_to, ..
                } if count_to < count_from => {
                    out.push(format!("histogram {name} lost samples: {count_from} -> {count_to}"));
                }
                MetricDelta::KindChanged => out.push(format!("metric {name} changed kind between scrapes")),
                _ => {}
            }
        }
        for name in &self.vanished {
            out.push(format!("metric {name} vanished between scrapes"));
        }
        out
    }
}

/// One process's metrics at a point in time: `(name, value)` pairs sorted
/// by name, serializable via [`MetricsSnapshot::to_bytes`] (magic `DSMS`).
///
/// Counters in successive snapshots of a live registry are monotonically
/// consistent: a later scrape never reports a smaller value.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// The scraped metrics, ascending by name (names are unique).
    pub metrics: Vec<(String, MetricValue)>,
}

impl MetricsSnapshot {
    /// Looks up a metric by name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.metrics
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| &self.metrics[i].1)
    }

    /// The value of counter `name`, if present and a counter.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name) {
            Some(MetricValue::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    /// The value of gauge `name`, if present and a gauge.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self.get(name) {
            Some(MetricValue::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// The state of histogram `name`, if present and a histogram.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match self.get(name) {
            Some(MetricValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Serializes the snapshot (magic `DSMS`, version 2).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        wire::put_header(&mut out, SNAPSHOT_MAGIC, SNAPSHOT_VERSION);
        wire::put_u32(&mut out, self.metrics.len() as u32);
        for (name, value) in &self.metrics {
            wire::put_str(&mut out, name);
            match value {
                MetricValue::Counter(v) => {
                    out.push(KIND_COUNTER);
                    wire::put_u64(&mut out, *v);
                }
                MetricValue::Gauge(v) => {
                    out.push(KIND_GAUGE);
                    wire::put_f64(&mut out, *v);
                }
                MetricValue::Histogram(h) => {
                    out.push(KIND_HISTOGRAM);
                    wire::put_u64(&mut out, h.count);
                    wire::put_u64(&mut out, h.sum_us);
                    wire::put_u64(&mut out, h.max_us);
                    wire::put_u32(&mut out, h.buckets.len() as u32);
                    for &(upper, n) in &h.buckets {
                        wire::put_u64(&mut out, upper);
                        wire::put_u64(&mut out, n);
                    }
                }
            }
        }
        out
    }

    /// Decodes a snapshot serialized by [`MetricsSnapshot::to_bytes`]
    /// (either version: a version-1 histogram body simply has no exact
    /// maximum).
    pub fn from_bytes(bytes: &[u8]) -> Result<MetricsSnapshot> {
        let mut r = ByteReader::new(bytes, "metrics snapshot");
        let version = r.header(SNAPSHOT_MAGIC, SNAPSHOT_VERSION)?;
        let count = r.u32()? as usize;
        // Smallest metric: empty name (4) + kind (1) + counter value (8).
        r.check_count(count, 13)?;
        let mut metrics = Vec::with_capacity(count);
        for _ in 0..count {
            let name = r.string()?;
            if let Some((last, _)) = metrics.last() {
                if *last >= name {
                    return Err(DsigError::Corrupt {
                        context: "metrics snapshot",
                        detail: format!("metric names not strictly ascending at {name:?}"),
                    });
                }
            }
            let value = match r.u8()? {
                KIND_COUNTER => MetricValue::Counter(r.u64()?),
                KIND_GAUGE => MetricValue::Gauge(r.f64()?),
                KIND_HISTOGRAM => {
                    let count = r.u64()?;
                    let sum_us = r.u64()?;
                    let max_us = if version >= 2 { r.u64()? } else { 0 };
                    let buckets = r.u32()? as usize;
                    r.check_count(buckets, 16)?;
                    let mut out = Vec::with_capacity(buckets);
                    let mut prev: Option<u64> = None;
                    for _ in 0..buckets {
                        let upper = r.u64()?;
                        if prev.is_some_and(|p| p >= upper) {
                            return Err(DsigError::Corrupt {
                                context: "metrics snapshot",
                                detail: format!("histogram bounds not ascending in {name:?}"),
                            });
                        }
                        prev = Some(upper);
                        out.push((upper, r.u64()?));
                    }
                    MetricValue::Histogram(HistogramSnapshot {
                        count,
                        sum_us,
                        max_us,
                        buckets: out,
                    })
                }
                kind => {
                    return Err(DsigError::Corrupt {
                        context: "metrics snapshot",
                        detail: format!("unknown metric kind {kind}"),
                    });
                }
            };
            metrics.push((name, value));
        }
        r.finish()?;
        Ok(MetricsSnapshot { metrics })
    }

    /// Computes per-metric deltas from `earlier` to `self` (both sorted by
    /// name, so this is one merge walk). Use
    /// [`SnapshotDiff::monotonicity_violations`] to check that two scrapes
    /// of one live registry are consistent.
    pub fn diff(&self, earlier: &MetricsSnapshot) -> SnapshotDiff {
        let mut diff = SnapshotDiff::default();
        let (mut i, mut j) = (0, 0);
        while i < earlier.metrics.len() || j < self.metrics.len() {
            let order = match (earlier.metrics.get(i), self.metrics.get(j)) {
                (Some((was, _)), Some((now, _))) => was.as_str().cmp(now.as_str()),
                (Some(_), None) => std::cmp::Ordering::Less,
                (None, Some(_)) => std::cmp::Ordering::Greater,
                (None, None) => unreachable!("loop condition holds an index in range"),
            };
            match order {
                std::cmp::Ordering::Less => {
                    diff.vanished.push(earlier.metrics[i].0.clone());
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    diff.appeared.push(self.metrics[j].0.clone());
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    let (name, was) = &earlier.metrics[i];
                    let now = &self.metrics[j].1;
                    let delta = match (was, now) {
                        (MetricValue::Counter(from), MetricValue::Counter(to)) => {
                            MetricDelta::Counter { from: *from, to: *to }
                        }
                        (MetricValue::Gauge(from), MetricValue::Gauge(to)) => {
                            MetricDelta::Gauge { from: *from, to: *to }
                        }
                        (MetricValue::Histogram(from), MetricValue::Histogram(to)) => MetricDelta::Histogram {
                            count_from: from.count,
                            count_to: to.count,
                            sum_from: from.sum_us,
                            sum_to: to.sum_us,
                        },
                        _ => MetricDelta::KindChanged,
                    };
                    diff.deltas.push((name.clone(), delta));
                    i += 1;
                    j += 1;
                }
            }
        }
        diff
    }

    /// Returns a copy with `prefix` prepended to every metric name. A
    /// uniform prefix preserves the sorted-unique name invariant, so the
    /// result still serializes and decodes.
    pub fn with_prefix(&self, prefix: &str) -> MetricsSnapshot {
        MetricsSnapshot {
            metrics: self
                .metrics
                .iter()
                .map(|(name, value)| (format!("{prefix}{name}"), value.clone()))
                .collect(),
        }
    }

    /// Element-wise rollup of several snapshots: counters and gauges are
    /// summed, histograms merged per bucket bound (counts and sums added,
    /// maxima maxed, bounds unioned ascending). A metric present in only
    /// some snapshots rolls up over those; a name registered as different
    /// kinds in different snapshots is dropped from the rollup (the
    /// per-backend copies still carry it).
    pub fn rollup(parts: &[MetricsSnapshot]) -> MetricsSnapshot {
        let mut merged: std::collections::BTreeMap<String, Option<MetricValue>> = std::collections::BTreeMap::new();
        for part in parts {
            for (name, value) in &part.metrics {
                match merged.get_mut(name) {
                    None => {
                        merged.insert(name.clone(), Some(value.clone()));
                    }
                    Some(slot) => {
                        let folded = match (slot.take(), value) {
                            (Some(MetricValue::Counter(a)), MetricValue::Counter(b)) => {
                                Some(MetricValue::Counter(a.wrapping_add(*b)))
                            }
                            (Some(MetricValue::Gauge(a)), MetricValue::Gauge(b)) => Some(MetricValue::Gauge(a + b)),
                            (Some(MetricValue::Histogram(a)), MetricValue::Histogram(b)) => {
                                Some(MetricValue::Histogram(merge_histograms(&a, b)))
                            }
                            // Kind conflict: poison the name for the rest
                            // of the rollup.
                            _ => None,
                        };
                        *slot = folded;
                    }
                }
            }
        }
        MetricsSnapshot {
            metrics: merged
                .into_iter()
                .filter_map(|(name, value)| value.map(|v| (name, v)))
                .collect(),
        }
    }

    /// Assembles a fleet scrape: each backend's snapshot under a
    /// `backend.<label>.` prefix, the cross-backend [rollup](MetricsSnapshot::rollup)
    /// under `fleet.`, and the aggregator's own snapshot unprefixed. On a
    /// (misconfigured) name collision the first writer wins, preserving
    /// the sorted-unique invariant the `DSMS` decoder enforces.
    pub fn merge_fleet(backends: &[(String, MetricsSnapshot)], own: &MetricsSnapshot) -> MetricsSnapshot {
        let mut merged: std::collections::BTreeMap<String, MetricValue> = std::collections::BTreeMap::new();
        let mut add = |snapshot: MetricsSnapshot| {
            for (name, value) in snapshot.metrics {
                merged.entry(name).or_insert(value);
            }
        };
        for (label, snapshot) in backends {
            add(snapshot.with_prefix(&format!("backend.{label}.")));
        }
        let parts: Vec<MetricsSnapshot> = backends.iter().map(|(_, s)| s.clone()).collect();
        add(MetricsSnapshot::rollup(&parts).with_prefix("fleet."));
        add(own.clone());
        MetricsSnapshot {
            metrics: merged.into_iter().collect(),
        }
    }

    /// Renders the snapshot as aligned human-readable text, one metric per
    /// line (the format CI uploads next to the bench JSON artifacts).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.metrics {
            let line = match value {
                MetricValue::Counter(v) => format!("{name} counter {v}"),
                MetricValue::Gauge(v) => format!("{name} gauge {v:?}"),
                MetricValue::Histogram(h) => format!(
                    "{name} histogram count {} mean_us {:.1} p50_us {} p95_us {} p99_us {} max_us {}",
                    h.count,
                    h.mean_us(),
                    h.p50_us(),
                    h.p95_us(),
                    h.p99_us(),
                    h.max_us
                ),
            };
            out.push_str(&line);
            out.push('\n');
        }
        out
    }
}

/// Merges two histogram snapshots: counts and sums added (wrapping, like
/// the recording path), maxima maxed, bucket bounds unioned ascending.
fn merge_histograms(a: &HistogramSnapshot, b: &HistogramSnapshot) -> HistogramSnapshot {
    let mut buckets: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
    for &(upper, n) in a.buckets.iter().chain(&b.buckets) {
        let slot = buckets.entry(upper).or_insert(0);
        *slot = slot.wrapping_add(n);
    }
    HistogramSnapshot {
        count: a.count.wrapping_add(b.count),
        sum_us: a.sum_us.wrapping_add(b.sum_us),
        max_us: a.max_us.max(b.max_us),
        buckets: buckets.into_iter().collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricsSnapshot {
        MetricsSnapshot {
            metrics: vec![
                ("a.count".into(), MetricValue::Counter(42)),
                ("b.gauge".into(), MetricValue::Gauge(-1.25)),
                (
                    "c.hist".into(),
                    MetricValue::Histogram(HistogramSnapshot {
                        count: 3,
                        sum_us: 300,
                        max_us: 120,
                        buckets: vec![(64, 1), (128, 2), (u64::MAX, 0)],
                    }),
                ),
            ],
        }
    }

    #[test]
    fn round_trips_bit_exactly() {
        let snap = sample();
        let bytes = snap.to_bytes();
        let back = MetricsSnapshot::from_bytes(&bytes).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn lookup_helpers() {
        let snap = sample();
        assert_eq!(snap.counter("a.count"), Some(42));
        assert_eq!(snap.gauge("b.gauge"), Some(-1.25));
        assert_eq!(snap.histogram("c.hist").unwrap().count, 3);
        assert_eq!(snap.counter("b.gauge"), None);
        assert_eq!(snap.get("missing"), None);
    }

    #[test]
    fn quantiles_walk_cumulative_buckets() {
        // max_us == 0 (unknown, as decoded from a version-1 snapshot):
        // tail quantiles saturate at the bucket bounds like they used to.
        let h = HistogramSnapshot {
            count: 100,
            sum_us: 0,
            max_us: 0,
            buckets: vec![(1, 50), (2, 40), (4, 9), (u64::MAX, 1)],
        };
        assert_eq!(h.p50_us(), 1);
        assert_eq!(h.p95_us(), 4);
        assert_eq!(h.p99_us(), 4);
        assert_eq!(h.quantile_us(1.0), u64::MAX);
        assert_eq!(
            HistogramSnapshot {
                count: 0,
                sum_us: 0,
                max_us: 0,
                buckets: vec![]
            }
            .p50_us(),
            0
        );
    }

    #[test]
    fn known_max_clamps_tail_quantiles() {
        // One sample in the overflow bucket: with the exact max known, the
        // tail quantile reports it instead of u64::MAX; quantiles below the
        // max keep their bucket-bound answers.
        let h = HistogramSnapshot {
            count: 100,
            sum_us: 0,
            max_us: 250_000_000,
            buckets: vec![(1, 50), (2, 40), (4, 9), (u64::MAX, 1)],
        };
        assert_eq!(h.p50_us(), 1);
        assert_eq!(h.quantile_us(1.0), 250_000_000);
        // A max below a bucket bound clamps that bound too (the last
        // sample in a bucket is never larger than the observed max).
        let tight = HistogramSnapshot {
            count: 2,
            sum_us: 5,
            max_us: 3,
            buckets: vec![(2, 1), (4, 1)],
        };
        assert_eq!(tight.quantile_us(1.0), 3);
    }

    #[test]
    fn version1_snapshots_still_decode() {
        // A hand-encoded version-1 DSMS: histogram bodies without max_us.
        let mut bytes = Vec::new();
        wire::put_header(&mut bytes, SNAPSHOT_MAGIC, 1);
        wire::put_u32(&mut bytes, 1);
        wire::put_str(&mut bytes, "h");
        bytes.push(2); // KIND_HISTOGRAM
        wire::put_u64(&mut bytes, 3); // count
        wire::put_u64(&mut bytes, 300); // sum_us
        wire::put_u32(&mut bytes, 2); // buckets
        for (upper, n) in [(64u64, 1u64), (u64::MAX, 2)] {
            wire::put_u64(&mut bytes, upper);
            wire::put_u64(&mut bytes, n);
        }
        let snap = MetricsSnapshot::from_bytes(&bytes).unwrap();
        let h = snap.histogram("h").unwrap();
        assert_eq!((h.count, h.sum_us, h.max_us), (3, 300, 0));
        // Re-encoding writes the current version.
        assert_eq!(snap.to_bytes()[4..6], SNAPSHOT_VERSION.to_le_bytes());
    }

    #[test]
    fn diff_reports_deltas_vanished_and_appeared() {
        let earlier = MetricsSnapshot {
            metrics: vec![
                ("a.count".into(), MetricValue::Counter(10)),
                ("b.gone".into(), MetricValue::Counter(1)),
                ("c.gauge".into(), MetricValue::Gauge(1.0)),
                (
                    "d.hist".into(),
                    MetricValue::Histogram(HistogramSnapshot {
                        count: 2,
                        sum_us: 20,
                        max_us: 15,
                        buckets: vec![(u64::MAX, 2)],
                    }),
                ),
            ],
        };
        let later = MetricsSnapshot {
            metrics: vec![
                ("a.count".into(), MetricValue::Counter(15)),
                ("c.gauge".into(), MetricValue::Gauge(-2.0)),
                (
                    "d.hist".into(),
                    MetricValue::Histogram(HistogramSnapshot {
                        count: 5,
                        sum_us: 60,
                        max_us: 15,
                        buckets: vec![(u64::MAX, 5)],
                    }),
                ),
                ("e.new".into(), MetricValue::Counter(1)),
            ],
        };
        let diff = later.diff(&earlier);
        assert_eq!(diff.vanished, vec!["b.gone".to_string()]);
        assert_eq!(diff.appeared, vec!["e.new".to_string()]);
        assert_eq!(
            diff.deltas,
            vec![
                ("a.count".into(), MetricDelta::Counter { from: 10, to: 15 }),
                ("c.gauge".into(), MetricDelta::Gauge { from: 1.0, to: -2.0 }),
                (
                    "d.hist".into(),
                    MetricDelta::Histogram {
                        count_from: 2,
                        count_to: 5,
                        sum_from: 20,
                        sum_to: 60,
                    }
                ),
            ]
        );
        // The vanished counter is the only monotonicity violation here.
        let violations = diff.monotonicity_violations();
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].contains("b.gone"), "{violations:?}");
    }

    #[test]
    fn diff_flags_regressions_and_kind_changes() {
        let earlier = MetricsSnapshot {
            metrics: vec![
                ("a".into(), MetricValue::Counter(10)),
                ("b".into(), MetricValue::Counter(1)),
                (
                    "h".into(),
                    MetricValue::Histogram(HistogramSnapshot {
                        count: 9,
                        sum_us: 0,
                        max_us: 0,
                        buckets: vec![],
                    }),
                ),
            ],
        };
        let later = MetricsSnapshot {
            metrics: vec![
                ("a".into(), MetricValue::Counter(3)),
                ("b".into(), MetricValue::Gauge(1.0)),
                (
                    "h".into(),
                    MetricValue::Histogram(HistogramSnapshot {
                        count: 4,
                        sum_us: 0,
                        max_us: 0,
                        buckets: vec![],
                    }),
                ),
            ],
        };
        let violations = later.diff(&earlier).monotonicity_violations();
        assert_eq!(violations.len(), 3, "{violations:?}");
        assert!(violations.iter().any(|v| v.contains("counter a went backwards")));
        assert!(violations.iter().any(|v| v.contains("b changed kind")));
        assert!(violations.iter().any(|v| v.contains("histogram h lost samples")));
        // An identical pair has no violations and no movement.
        assert!(earlier.diff(&earlier).monotonicity_violations().is_empty());
    }

    #[test]
    fn rejects_unsorted_names_unknown_kinds_and_trailing_bytes() {
        let mut unsorted = sample();
        unsorted.metrics.swap(0, 1);
        assert!(MetricsSnapshot::from_bytes(&unsorted.to_bytes()).is_err());

        let mut bytes = sample().to_bytes();
        // The kind byte of the first metric sits after the header (6), the
        // metric count (4) and the length-prefixed name.
        let kind_at = 6 + 4 + 4 + "a.count".len();
        bytes[kind_at] = 9;
        assert!(MetricsSnapshot::from_bytes(&bytes).is_err());

        let mut trailing = sample().to_bytes();
        trailing.push(0);
        assert!(MetricsSnapshot::from_bytes(&trailing).is_err());
    }

    #[test]
    fn rejects_truncation_at_every_length() {
        let bytes = sample().to_bytes();
        for keep in 0..bytes.len() {
            assert!(MetricsSnapshot::from_bytes(&bytes[..keep]).is_err());
        }
    }

    #[test]
    fn with_prefix_preserves_order_and_round_trips() {
        let prefixed = sample().with_prefix("backend.local-0.");
        assert_eq!(prefixed.counter("backend.local-0.a.count"), Some(42));
        assert!(MetricsSnapshot::from_bytes(&prefixed.to_bytes()).is_ok());
    }

    #[test]
    fn rollup_sums_counters_and_merges_histograms() {
        let a = MetricsSnapshot {
            metrics: vec![
                ("c".into(), MetricValue::Counter(10)),
                ("g".into(), MetricValue::Gauge(1.5)),
                (
                    "h".into(),
                    MetricValue::Histogram(HistogramSnapshot {
                        count: 2,
                        sum_us: 30,
                        max_us: 20,
                        buckets: vec![(16, 1), (32, 1)],
                    }),
                ),
                ("only.a".into(), MetricValue::Counter(1)),
                ("kind.conflict".into(), MetricValue::Counter(1)),
            ],
        };
        let b = MetricsSnapshot {
            metrics: vec![
                ("c".into(), MetricValue::Counter(5)),
                ("g".into(), MetricValue::Gauge(0.5)),
                (
                    "h".into(),
                    MetricValue::Histogram(HistogramSnapshot {
                        count: 3,
                        sum_us: 200,
                        max_us: 90,
                        buckets: vec![(32, 2), (128, 1)],
                    }),
                ),
                ("kind.conflict".into(), MetricValue::Gauge(1.0)),
            ],
        };
        let rolled = MetricsSnapshot::rollup(&[a, b]);
        assert_eq!(rolled.counter("c"), Some(15));
        assert_eq!(rolled.gauge("g"), Some(2.0));
        let h = rolled.histogram("h").unwrap();
        assert_eq!(h.count, 5);
        assert_eq!(h.sum_us, 230);
        assert_eq!(h.max_us, 90);
        assert_eq!(h.buckets, vec![(16, 1), (32, 3), (128, 1)]);
        // Partial presence rolls up over the snapshots that carry it.
        assert_eq!(rolled.counter("only.a"), Some(1));
        // A kind conflict drops the name from the rollup entirely.
        assert_eq!(rolled.get("kind.conflict"), None);
        assert!(MetricsSnapshot::from_bytes(&rolled.to_bytes()).is_ok());
    }

    #[test]
    fn merge_fleet_prefixes_rolls_up_and_appends_own() {
        let backend = |n: u64| MetricsSnapshot {
            metrics: vec![("serve.requests".into(), MetricValue::Counter(n))],
        };
        let own = MetricsSnapshot {
            metrics: vec![("router.forwards".into(), MetricValue::Counter(7))],
        };
        let fleet =
            MetricsSnapshot::merge_fleet(&[("local-0".into(), backend(3)), ("local-1".into(), backend(4))], &own);
        assert_eq!(fleet.counter("backend.local-0.serve.requests"), Some(3));
        assert_eq!(fleet.counter("backend.local-1.serve.requests"), Some(4));
        assert_eq!(fleet.counter("fleet.serve.requests"), Some(7));
        assert_eq!(fleet.counter("router.forwards"), Some(7));
        // The result is a legal DSMS body: sorted unique names.
        let bytes = fleet.to_bytes();
        assert_eq!(MetricsSnapshot::from_bytes(&bytes).unwrap(), fleet);
    }

    #[test]
    fn render_is_one_line_per_metric() {
        let text = sample().render();
        assert_eq!(text.lines().count(), 3);
        assert!(text.contains("a.count counter 42"));
        assert!(text.contains("p99_us"));
    }
}
