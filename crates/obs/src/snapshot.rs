//! The stable scrape format: [`MetricsSnapshot`] and its `DSMS` wire codec.

use dsig_core::wire::{self, ByteReader};
use dsig_core::{DsigError, Result};

/// Magic bytes of a serialized metrics snapshot.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"DSMS";
/// Current snapshot format version.
pub const SNAPSHOT_VERSION: u16 = 1;

const KIND_COUNTER: u8 = 0;
const KIND_GAUGE: u8 = 1;
const KIND_HISTOGRAM: u8 = 2;

/// An owned copy of one histogram's state at scrape time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total number of recorded samples.
    pub count: u64,
    /// Sum of all recorded values, in microseconds (wrapping).
    pub sum_us: u64,
    /// `(inclusive upper bound in µs, samples)` per bucket, ascending; the
    /// final bucket's bound is `u64::MAX` (overflow).
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// The smallest bucket upper bound (µs) below which at least fraction
    /// `q` of the samples fall. Returns 0 for an empty histogram; an answer
    /// of `u64::MAX` means the quantile landed in the overflow bucket.
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(upper, n) in &self.buckets {
            seen = seen.saturating_add(n);
            if seen >= rank {
                return upper;
            }
        }
        u64::MAX
    }

    /// Median latency bound in µs.
    pub fn p50_us(&self) -> u64 {
        self.quantile_us(0.50)
    }

    /// 95th-percentile latency bound in µs.
    pub fn p95_us(&self) -> u64 {
        self.quantile_us(0.95)
    }

    /// 99th-percentile latency bound in µs.
    pub fn p99_us(&self) -> u64 {
        self.quantile_us(0.99)
    }

    /// Mean recorded value in µs (0 for an empty histogram).
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.count as f64
        }
    }
}

/// The value of one scraped metric.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A monotonically increasing count.
    Counter(u64),
    /// A last-write-wins measurement.
    Gauge(f64),
    /// A latency distribution.
    Histogram(HistogramSnapshot),
}

/// One process's metrics at a point in time: `(name, value)` pairs sorted
/// by name, serializable via [`MetricsSnapshot::to_bytes`] (magic `DSMS`).
///
/// Counters in successive snapshots of a live registry are monotonically
/// consistent: a later scrape never reports a smaller value.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// The scraped metrics, ascending by name (names are unique).
    pub metrics: Vec<(String, MetricValue)>,
}

impl MetricsSnapshot {
    /// Looks up a metric by name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.metrics
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| &self.metrics[i].1)
    }

    /// The value of counter `name`, if present and a counter.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name) {
            Some(MetricValue::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    /// The value of gauge `name`, if present and a gauge.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self.get(name) {
            Some(MetricValue::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// The state of histogram `name`, if present and a histogram.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match self.get(name) {
            Some(MetricValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Serializes the snapshot (magic `DSMS`, version 1).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        wire::put_header(&mut out, SNAPSHOT_MAGIC, SNAPSHOT_VERSION);
        wire::put_u32(&mut out, self.metrics.len() as u32);
        for (name, value) in &self.metrics {
            wire::put_str(&mut out, name);
            match value {
                MetricValue::Counter(v) => {
                    out.push(KIND_COUNTER);
                    wire::put_u64(&mut out, *v);
                }
                MetricValue::Gauge(v) => {
                    out.push(KIND_GAUGE);
                    wire::put_f64(&mut out, *v);
                }
                MetricValue::Histogram(h) => {
                    out.push(KIND_HISTOGRAM);
                    wire::put_u64(&mut out, h.count);
                    wire::put_u64(&mut out, h.sum_us);
                    wire::put_u32(&mut out, h.buckets.len() as u32);
                    for &(upper, n) in &h.buckets {
                        wire::put_u64(&mut out, upper);
                        wire::put_u64(&mut out, n);
                    }
                }
            }
        }
        out
    }

    /// Decodes a snapshot serialized by [`MetricsSnapshot::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<MetricsSnapshot> {
        let mut r = ByteReader::new(bytes, "metrics snapshot");
        r.header(SNAPSHOT_MAGIC, SNAPSHOT_VERSION)?;
        let count = r.u32()? as usize;
        // Smallest metric: empty name (4) + kind (1) + counter value (8).
        r.check_count(count, 13)?;
        let mut metrics = Vec::with_capacity(count);
        for _ in 0..count {
            let name = r.string()?;
            if let Some((last, _)) = metrics.last() {
                if *last >= name {
                    return Err(DsigError::Corrupt {
                        context: "metrics snapshot",
                        detail: format!("metric names not strictly ascending at {name:?}"),
                    });
                }
            }
            let value = match r.u8()? {
                KIND_COUNTER => MetricValue::Counter(r.u64()?),
                KIND_GAUGE => MetricValue::Gauge(r.f64()?),
                KIND_HISTOGRAM => {
                    let count = r.u64()?;
                    let sum_us = r.u64()?;
                    let buckets = r.u32()? as usize;
                    r.check_count(buckets, 16)?;
                    let mut out = Vec::with_capacity(buckets);
                    let mut prev: Option<u64> = None;
                    for _ in 0..buckets {
                        let upper = r.u64()?;
                        if prev.is_some_and(|p| p >= upper) {
                            return Err(DsigError::Corrupt {
                                context: "metrics snapshot",
                                detail: format!("histogram bounds not ascending in {name:?}"),
                            });
                        }
                        prev = Some(upper);
                        out.push((upper, r.u64()?));
                    }
                    MetricValue::Histogram(HistogramSnapshot {
                        count,
                        sum_us,
                        buckets: out,
                    })
                }
                kind => {
                    return Err(DsigError::Corrupt {
                        context: "metrics snapshot",
                        detail: format!("unknown metric kind {kind}"),
                    });
                }
            };
            metrics.push((name, value));
        }
        r.finish()?;
        Ok(MetricsSnapshot { metrics })
    }

    /// Renders the snapshot as aligned human-readable text, one metric per
    /// line (the format CI uploads next to the bench JSON artifacts).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.metrics {
            let line = match value {
                MetricValue::Counter(v) => format!("{name} counter {v}"),
                MetricValue::Gauge(v) => format!("{name} gauge {v:?}"),
                MetricValue::Histogram(h) => format!(
                    "{name} histogram count {} mean_us {:.1} p50_us {} p95_us {} p99_us {}",
                    h.count,
                    h.mean_us(),
                    h.p50_us(),
                    h.p95_us(),
                    h.p99_us()
                ),
            };
            out.push_str(&line);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricsSnapshot {
        MetricsSnapshot {
            metrics: vec![
                ("a.count".into(), MetricValue::Counter(42)),
                ("b.gauge".into(), MetricValue::Gauge(-1.25)),
                (
                    "c.hist".into(),
                    MetricValue::Histogram(HistogramSnapshot {
                        count: 3,
                        sum_us: 300,
                        buckets: vec![(64, 1), (128, 2), (u64::MAX, 0)],
                    }),
                ),
            ],
        }
    }

    #[test]
    fn round_trips_bit_exactly() {
        let snap = sample();
        let bytes = snap.to_bytes();
        let back = MetricsSnapshot::from_bytes(&bytes).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn lookup_helpers() {
        let snap = sample();
        assert_eq!(snap.counter("a.count"), Some(42));
        assert_eq!(snap.gauge("b.gauge"), Some(-1.25));
        assert_eq!(snap.histogram("c.hist").unwrap().count, 3);
        assert_eq!(snap.counter("b.gauge"), None);
        assert_eq!(snap.get("missing"), None);
    }

    #[test]
    fn quantiles_walk_cumulative_buckets() {
        let h = HistogramSnapshot {
            count: 100,
            sum_us: 0,
            buckets: vec![(1, 50), (2, 40), (4, 9), (u64::MAX, 1)],
        };
        assert_eq!(h.p50_us(), 1);
        assert_eq!(h.p95_us(), 4);
        assert_eq!(h.p99_us(), 4);
        assert_eq!(h.quantile_us(1.0), u64::MAX);
        assert_eq!(
            HistogramSnapshot {
                count: 0,
                sum_us: 0,
                buckets: vec![]
            }
            .p50_us(),
            0
        );
    }

    #[test]
    fn rejects_unsorted_names_unknown_kinds_and_trailing_bytes() {
        let mut unsorted = sample();
        unsorted.metrics.swap(0, 1);
        assert!(MetricsSnapshot::from_bytes(&unsorted.to_bytes()).is_err());

        let mut bytes = sample().to_bytes();
        // The kind byte of the first metric sits after the header (6), the
        // metric count (4) and the length-prefixed name.
        let kind_at = 6 + 4 + 4 + "a.count".len();
        bytes[kind_at] = 9;
        assert!(MetricsSnapshot::from_bytes(&bytes).is_err());

        let mut trailing = sample().to_bytes();
        trailing.push(0);
        assert!(MetricsSnapshot::from_bytes(&trailing).is_err());
    }

    #[test]
    fn rejects_truncation_at_every_length() {
        let bytes = sample().to_bytes();
        for keep in 0..bytes.len() {
            assert!(MetricsSnapshot::from_bytes(&bytes[..keep]).is_err());
        }
    }

    #[test]
    fn render_is_one_line_per_metric() {
        let text = sample().render();
        assert_eq!(text.lines().count(), 3);
        assert!(text.contains("a.count counter 42"));
        assert!(text.contains("p99_us"));
    }
}
