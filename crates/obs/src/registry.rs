//! The process-wide metric registry.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

use crate::events::EventSink;
use crate::metrics::{Counter, Gauge, Histogram};
use crate::snapshot::{MetricValue, MetricsSnapshot};
use crate::trace::Tracer;

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A cheaply cloneable handle to a set of named metrics.
///
/// Components resolve their metric handles (`Arc<Counter>` etc.) once at
/// construction time; the registry's lock is touched only on registration
/// and on [`Registry::snapshot`], never on the recording hot path. Clones
/// share the same underlying metrics, and [`Registry::global`] provides the
/// conventional process-wide instance every tier registers into by default.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<Mutex<BTreeMap<String, Metric>>>,
    tracer: Tracer,
    events: EventSink,
    kind_mismatches: Arc<AtomicU64>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry").field("metrics", &self.lock().len()).finish()
    }
}

impl Registry {
    /// Creates an empty, private registry (used by tests that need
    /// isolation from the process-wide one).
    pub fn new() -> Self {
        Registry::default()
    }

    /// The process-wide registry. Every tier's constructors default to
    /// registering here, so one scrape sees the whole process.
    pub fn global() -> Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new).clone()
    }

    /// The registry's span recorder. Clones share it, so every component
    /// registered into one registry records into one ring and a single
    /// trace scrape sees the whole process.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The registry's event recorder. Clones share it, so every component
    /// registered into one registry emits into one ring and a single
    /// event drain sees the whole process.
    pub fn events(&self) -> &EventSink {
        &self.events
    }

    fn lock(&self) -> MutexGuard<'_, BTreeMap<String, Metric>> {
        // Metric updates cannot panic, so poisoning can only come from a
        // panicking *caller* mid-registration; the map is still coherent.
        self.inner.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Returns the counter registered under `name`, creating it at zero if
    /// absent. If `name` is already registered as a different kind, a
    /// detached counter is returned (it keeps working but is invisible to
    /// snapshots) — metric names are namespaced per tier to keep that a
    /// programming error that cannot take a service down.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.lock();
        let metric = map
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new())));
        match metric {
            Metric::Counter(c) => Arc::clone(c),
            _ => {
                self.kind_mismatches.fetch_add(1, Ordering::Relaxed);
                Arc::new(Counter::new())
            }
        }
    }

    /// Returns the gauge registered under `name`, creating it at `0.0` if
    /// absent; same kind-mismatch policy as [`Registry::counter`].
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.lock();
        let metric = map
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new())));
        match metric {
            Metric::Gauge(g) => Arc::clone(g),
            _ => {
                self.kind_mismatches.fetch_add(1, Ordering::Relaxed);
                Arc::new(Gauge::new())
            }
        }
    }

    /// Returns the histogram registered under `name`, creating it empty if
    /// absent; same kind-mismatch policy as [`Registry::counter`].
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.lock();
        let metric = map
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new())));
        match metric {
            Metric::Histogram(h) => Arc::clone(h),
            _ => {
                self.kind_mismatches.fetch_add(1, Ordering::Relaxed);
                Arc::new(Histogram::new())
            }
        }
    }

    /// Captures every registered metric into a [`MetricsSnapshot`], sorted
    /// by name. Counters are monotonically consistent across successive
    /// snapshots of the same registry.
    ///
    /// Three synthetic health counters ride along so silent data loss is
    /// visible from any scrape: `obs.dropped_spans` and
    /// `obs.dropped_events` (ring overwrites of undrained records) and
    /// `obs.kind_mismatches` (detached handles returned for a name
    /// registered as a different kind). A real metric registered under one
    /// of those names wins.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let map = self.lock();
        let mut metrics: Vec<(String, MetricValue)> = map
            .iter()
            .map(|(name, metric)| {
                let value = match metric {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                };
                (name.clone(), value)
            })
            .collect();
        drop(map);
        for (name, value) in [
            ("obs.dropped_events", self.events.dropped()),
            ("obs.dropped_spans", self.tracer.dropped()),
            ("obs.kind_mismatches", self.kind_mismatches.load(Ordering::Relaxed)),
        ] {
            if let Err(at) = metrics.binary_search_by(|(n, _)| n.as_str().cmp(name)) {
                metrics.insert(at, (name.to_owned(), MetricValue::Counter(value)));
            }
        }
        MetricsSnapshot { metrics }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_returns_shared_handles() {
        let registry = Registry::new();
        let a = registry.counter("x");
        let b = registry.counter("x");
        a.inc();
        b.inc();
        assert_eq!(registry.snapshot().counter("x"), Some(2));
    }

    #[test]
    fn clones_share_metrics() {
        let registry = Registry::new();
        let clone = registry.clone();
        clone.gauge("g").set(2.5);
        assert_eq!(registry.snapshot().gauge("g"), Some(2.5));
    }

    #[test]
    fn kind_mismatch_returns_detached_handle_and_is_counted() {
        let registry = Registry::new();
        registry.counter("m").inc();
        let detached = registry.gauge("m");
        detached.set(9.0);
        // The registered counter is untouched and still a counter, but the
        // misuse is visible in the snapshot.
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.counter("m"), Some(1));
        assert_eq!(snapshot.counter("obs.kind_mismatches"), Some(1));
        registry.histogram("m");
        registry.counter("g");
        assert_eq!(registry.snapshot().counter("obs.kind_mismatches"), Some(2));
    }

    #[test]
    fn snapshot_is_sorted_and_monotonic() {
        let registry = Registry::new();
        let c = registry.counter("b.second");
        registry.counter("a.first");
        registry.histogram("c.third").record_us(10);
        c.add(5);
        let first = registry.snapshot();
        let names: Vec<_> = first.metrics.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            names,
            [
                "a.first",
                "b.second",
                "c.third",
                "obs.dropped_events",
                "obs.dropped_spans",
                "obs.kind_mismatches"
            ]
        );
        c.add(5);
        let second = registry.snapshot();
        assert!(second.counter("b.second").unwrap() > first.counter("b.second").unwrap());
    }

    #[test]
    fn snapshot_surfaces_ring_drops_and_real_metrics_win() {
        let registry = Registry::new();
        assert_eq!(registry.snapshot().counter("obs.dropped_spans"), Some(0));
        assert_eq!(registry.snapshot().counter("obs.dropped_events"), Some(0));
        for i in 0..(crate::EventSink::DEFAULT_CAPACITY as u64 + 3) {
            registry
                .events()
                .emit(crate::EventLevel::Info, "test", "e", i.to_string(), &[]);
        }
        assert_eq!(registry.snapshot().counter("obs.dropped_events"), Some(3));
        // A real metric registered under a synthetic name is not shadowed.
        registry.counter("obs.dropped_spans").add(41);
        assert_eq!(registry.snapshot().counter("obs.dropped_spans"), Some(41));
        // The snapshot still decodes: names stayed strictly ascending.
        let bytes = registry.snapshot().to_bytes();
        assert!(MetricsSnapshot::from_bytes(&bytes).is_ok());
    }

    #[test]
    fn clones_share_the_event_sink() {
        let registry = Registry::new();
        registry
            .clone()
            .events()
            .emit(crate::EventLevel::Warn, "test", "shared", "x", &[]);
        assert_eq!(registry.events().drain().len(), 1);
    }

    #[test]
    fn clones_share_the_tracer() {
        let registry = Registry::new();
        let ctx = registry.tracer().start_trace();
        drop(registry.clone().tracer().span("s", "test", ctx));
        assert_eq!(registry.tracer().drain().len(), 1);
    }

    #[test]
    fn global_registry_is_one_instance() {
        let a = Registry::global();
        let name = "obs.test.global_registry_is_one_instance";
        a.counter(name).inc();
        assert!(Registry::global().snapshot().counter(name).unwrap() >= 1);
    }
}
