//! Measurement-noise injection.
//!
//! §IV-C of the paper evaluates the test robustness with "high frequency
//! white noise on the signals with null mean and a 3σ spread of 0.015 V".
//! [`NoiseModel::paper_default`] reproduces exactly that setting.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::waveform::Waveform;

/// One standard-normal draw via the Box-Muller transform (two uniforms, one
/// cosine branch). This is *the* Gaussian convention of the workspace: noise
/// injection, monitor Monte-Carlo variation and population screening all draw
/// through it, so their streams stay bit-identical to one another for a given
/// generator state.
pub fn standard_normal(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Additive white Gaussian noise applied to observed signals.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseModel {
    /// Standard deviation of the noise in volts.
    pub sigma: f64,
    /// Mean value of the noise in volts (the paper uses 0).
    pub mean: f64,
}

impl NoiseModel {
    /// Creates a zero-mean noise model with the given standard deviation.
    pub fn new(sigma: f64) -> Self {
        NoiseModel { sigma, mean: 0.0 }
    }

    /// The paper's noise setting: null mean and a 3σ spread of 0.015 V,
    /// i.e. σ = 5 mV.
    pub fn paper_default() -> Self {
        NoiseModel {
            sigma: 0.015 / 3.0,
            mean: 0.0,
        }
    }

    /// A noiseless model (σ = 0).
    pub fn none() -> Self {
        NoiseModel { sigma: 0.0, mean: 0.0 }
    }

    /// The 3σ spread of the model in volts.
    pub fn three_sigma(&self) -> f64 {
        3.0 * self.sigma
    }

    /// Draws one noise sample using the supplied random number generator.
    pub fn sample(&self, rng: &mut impl Rng) -> f64 {
        if self.sigma == 0.0 {
            return self.mean;
        }
        self.mean + self.sigma * standard_normal(rng)
    }

    /// Returns a copy of `waveform` with independent noise added to every
    /// sample, using a deterministic seed.
    pub fn apply(&self, waveform: &Waveform, seed: u64) -> Waveform {
        if self.is_none() {
            return waveform.clone();
        }
        let mut samples = waveform.samples().to_vec();
        self.apply_in_place(&mut samples, seed);
        Waveform::new(waveform.start_time(), waveform.sample_rate(), samples)
    }

    /// Adds independent noise to every sample in place — the allocation-free
    /// primitive behind the batched capture fast path. For a given seed the
    /// realisation is bit-identical to [`NoiseModel::apply`] (same generator,
    /// same draw order, same addition).
    pub fn apply_in_place(&self, samples: &mut [f64], seed: u64) {
        if self.is_none() {
            return;
        }
        let mut rng = StdRng::seed_from_u64(seed);
        for x in samples.iter_mut() {
            *x += self.sample(&mut rng);
        }
    }

    /// Whether the model is a no-op (zero sigma and zero mean): applying it
    /// returns the input unchanged, which is what lets capture paths share
    /// one noiseless observed stimulus across devices.
    pub fn is_none(&self) -> bool {
        self.sigma == 0.0 && self.mean == 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_three_sigma_spec() {
        let n = NoiseModel::paper_default();
        assert!((n.three_sigma() - 0.015).abs() < 1e-12);
        assert_eq!(n.mean, 0.0);
    }

    #[test]
    fn none_is_identity() {
        let w = Waveform::from_fn(0.0, 1e-3, 1e6, |t| t);
        let noisy = NoiseModel::none().apply(&w, 42);
        assert_eq!(noisy, w);
    }

    #[test]
    fn sample_statistics_match_model() {
        let n = NoiseModel::new(0.01);
        let mut rng = StdRng::seed_from_u64(7);
        let draws: Vec<f64> = (0..20_000).map(|_| n.sample(&mut rng)).collect();
        let mean = draws.iter().sum::<f64>() / draws.len() as f64;
        let var = draws.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / draws.len() as f64;
        assert!(mean.abs() < 5e-4, "mean {mean}");
        assert!((var.sqrt() - 0.01).abs() < 5e-4, "sigma {}", var.sqrt());
    }

    #[test]
    fn apply_is_deterministic_per_seed() {
        let w = Waveform::from_fn(0.0, 1e-4, 1e6, |_| 0.5);
        let n = NoiseModel::paper_default();
        let a = n.apply(&w, 1);
        let b = n.apply(&w, 1);
        let c = n.apply(&w, 2);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn apply_preserves_grid() {
        let w = Waveform::from_fn(0.0, 1e-4, 2e6, |t| t * 1e3);
        let noisy = NoiseModel::new(0.005).apply(&w, 3);
        assert_eq!(noisy.len(), w.len());
        assert_eq!(noisy.sample_rate(), w.sample_rate());
        assert_eq!(noisy.start_time(), w.start_time());
    }

    #[test]
    fn nonzero_mean_shifts_signal() {
        let w = Waveform::from_fn(0.0, 1e-3, 1e5, |_| 0.0);
        let n = NoiseModel { sigma: 0.0, mean: 0.1 };
        let shifted = n.apply(&w, 0);
        assert!((shifted.mean() - 0.1).abs() < 1e-12);
    }
}
