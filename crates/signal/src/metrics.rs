//! Scalar error metrics between waveforms.
//!
//! These are used by the baseline comparison methods (DESIGN.md experiment
//! index): classic transient-test style metrics that compare the raw CUT
//! output against a golden output, as opposed to the paper's digital
//! signature approach.

use crate::waveform::{SignalError, Waveform};

/// Mean squared error between two waveforms on the same grid.
///
/// # Errors
/// Returns [`SignalError::GridMismatch`] if the lengths differ and
/// [`SignalError::TooShort`] for empty waveforms.
pub fn mean_squared_error(a: &Waveform, b: &Waveform) -> Result<f64, SignalError> {
    check(a, b)?;
    let n = a.len() as f64;
    Ok(a.samples()
        .iter()
        .zip(b.samples())
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        / n)
}

/// Root-mean-square error between two waveforms on the same grid.
///
/// # Errors
/// Same as [`mean_squared_error`].
pub fn rms_error(a: &Waveform, b: &Waveform) -> Result<f64, SignalError> {
    Ok(mean_squared_error(a, b)?.sqrt())
}

/// Maximum absolute difference between two waveforms on the same grid.
///
/// # Errors
/// Same as [`mean_squared_error`].
pub fn max_abs_error(a: &Waveform, b: &Waveform) -> Result<f64, SignalError> {
    check(a, b)?;
    Ok(a.samples()
        .iter()
        .zip(b.samples())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0_f64, f64::max))
}

/// Normalized RMS error: RMS error divided by the golden waveform's
/// peak-to-peak amplitude. Dimensionless, comparable across signal levels.
///
/// # Errors
/// Same as [`mean_squared_error`], plus [`SignalError::InvalidParameter`] if
/// the golden waveform is constant (zero peak-to-peak).
pub fn normalized_rms_error(golden: &Waveform, observed: &Waveform) -> Result<f64, SignalError> {
    let span = golden.peak_to_peak();
    if span <= 0.0 {
        return Err(SignalError::InvalidParameter(
            "golden waveform has zero peak-to-peak amplitude".into(),
        ));
    }
    Ok(rms_error(golden, observed)? / span)
}

/// Pearson correlation coefficient between two waveforms on the same grid.
///
/// # Errors
/// Same as [`mean_squared_error`], plus [`SignalError::InvalidParameter`] if
/// either waveform has zero variance.
pub fn correlation(a: &Waveform, b: &Waveform) -> Result<f64, SignalError> {
    check(a, b)?;
    let ma = a.mean();
    let mb = b.mean();
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&x, &y) in a.samples().iter().zip(b.samples()) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va <= 0.0 || vb <= 0.0 {
        return Err(SignalError::InvalidParameter(
            "constant waveform has no correlation".into(),
        ));
    }
    Ok(cov / (va.sqrt() * vb.sqrt()))
}

fn check(a: &Waveform, b: &Waveform) -> Result<(), SignalError> {
    if a.len() != b.len() {
        return Err(SignalError::GridMismatch {
            left: a.len(),
            right: b.len(),
        });
    }
    if a.is_empty() {
        return Err(SignalError::TooShort { len: 0, needed: 1 });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(offset: f64) -> Waveform {
        Waveform::from_fn(0.0, 1.0, 100.0, move |t| t + offset)
    }

    #[test]
    fn identical_waveforms_have_zero_error() {
        let a = ramp(0.0);
        assert_eq!(mean_squared_error(&a, &a).unwrap(), 0.0);
        assert_eq!(rms_error(&a, &a).unwrap(), 0.0);
        assert_eq!(max_abs_error(&a, &a).unwrap(), 0.0);
        assert_eq!(normalized_rms_error(&a, &a).unwrap(), 0.0);
    }

    #[test]
    fn constant_offset_gives_expected_errors() {
        let a = ramp(0.0);
        let b = ramp(0.1);
        assert!((mean_squared_error(&a, &b).unwrap() - 0.01).abs() < 1e-12);
        assert!((rms_error(&a, &b).unwrap() - 0.1).abs() < 1e-12);
        assert!((max_abs_error(&a, &b).unwrap() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn normalized_error_scales_by_span() {
        let a = ramp(0.0); // peak-to-peak 0.99
        let b = ramp(0.099);
        let nrms = normalized_rms_error(&a, &b).unwrap();
        assert!((nrms - 0.1).abs() < 1e-2);
    }

    #[test]
    fn normalized_error_rejects_constant_golden() {
        let a = Waveform::from_fn(0.0, 1.0, 10.0, |_| 0.5);
        let b = ramp(0.0).resample(10.0);
        assert!(normalized_rms_error(&a, &b).is_err());
    }

    #[test]
    fn correlation_detects_sign() {
        let a = Waveform::from_fn(0.0, 1.0, 100.0, |t| (2.0 * std::f64::consts::PI * t).sin());
        let b = a.map(|x| -x);
        assert!((correlation(&a, &a).unwrap() - 1.0).abs() < 1e-12);
        assert!((correlation(&a, &b).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn correlation_rejects_constant_inputs() {
        let a = Waveform::from_fn(0.0, 1.0, 10.0, |_| 1.0);
        let b = ramp(0.0).resample(10.0);
        assert!(correlation(&a, &b).is_err());
    }

    #[test]
    fn mismatched_grids_rejected() {
        let a = ramp(0.0);
        let b = Waveform::from_fn(0.0, 1.0, 50.0, |t| t);
        assert!(mean_squared_error(&a, &b).is_err());
        assert!(correlation(&a, &b).is_err());
    }

    #[test]
    fn empty_waveforms_rejected() {
        let a = Waveform::new(0.0, 1.0, vec![]);
        let b = Waveform::new(0.0, 1.0, vec![]);
        assert!(matches!(mean_squared_error(&a, &b), Err(SignalError::TooShort { .. })));
    }
}
