//! Multitone stimulus generation.
//!
//! The paper composes the CUT response with a *multitone* input signal whose
//! tones are harmonically related, so the resulting Lissajous curve is
//! periodic with the fundamental period (§II).

use crate::waveform::{SignalError, Waveform};

/// One tone of a multitone stimulus.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ToneSpec {
    /// Harmonic index relative to the fundamental (1 = fundamental).
    pub harmonic: u32,
    /// Peak amplitude in volts.
    pub amplitude: f64,
    /// Initial phase in radians.
    pub phase_rad: f64,
}

impl ToneSpec {
    /// Creates a tone at the given harmonic with zero phase.
    pub fn new(harmonic: u32, amplitude: f64) -> Self {
        ToneSpec {
            harmonic,
            amplitude,
            phase_rad: 0.0,
        }
    }

    /// Returns a copy with the given phase (radians).
    pub fn with_phase(mut self, phase_rad: f64) -> Self {
        self.phase_rad = phase_rad;
        self
    }
}

/// A multitone stimulus: a DC offset plus harmonically related sinusoids.
///
/// # Examples
/// ```
/// use sim_signal::{MultitoneSpec, ToneSpec};
/// let stim = MultitoneSpec::new(5_000.0, 0.5, vec![
///     ToneSpec::new(1, 0.25),
///     ToneSpec::new(3, 0.15),
/// ]).expect("valid stimulus");
/// assert!((stim.period() - 2e-4).abs() < 1e-12);
/// assert!((stim.value(0.0) - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MultitoneSpec {
    fundamental_hz: f64,
    offset: f64,
    tones: Vec<ToneSpec>,
}

impl MultitoneSpec {
    /// Creates a multitone specification.
    ///
    /// # Errors
    /// Returns [`SignalError::InvalidParameter`] if the fundamental is not
    /// positive, the tone list is empty, or any harmonic index is zero.
    pub fn new(fundamental_hz: f64, offset: f64, tones: Vec<ToneSpec>) -> Result<Self, SignalError> {
        if !(fundamental_hz > 0.0) {
            return Err(SignalError::InvalidParameter(format!(
                "fundamental frequency must be positive (got {fundamental_hz})"
            )));
        }
        if tones.is_empty() {
            return Err(SignalError::InvalidParameter("at least one tone is required".into()));
        }
        if tones.iter().any(|t| t.harmonic == 0) {
            return Err(SignalError::InvalidParameter("harmonic indices start at 1".into()));
        }
        Ok(MultitoneSpec {
            fundamental_hz,
            offset,
            tones,
        })
    }

    /// The stimulus used throughout the paper reproduction: a 5 kHz
    /// fundamental plus 3rd and 5th harmonics, centred at 0.5 V so that the
    /// composed Lissajous stays inside the `[0, 1] V x [0, 1] V` window of
    /// Fig. 1 and Fig. 6. The fundamental period is 200 µs, matching the time
    /// axis of Fig. 7.
    pub fn paper_default() -> Self {
        MultitoneSpec {
            fundamental_hz: 5_000.0,
            offset: 0.5,
            tones: vec![
                ToneSpec::new(1, 0.28),
                ToneSpec::new(3, 0.14).with_phase(std::f64::consts::FRAC_PI_3),
                ToneSpec::new(5, 0.07).with_phase(std::f64::consts::FRAC_PI_6),
            ],
        }
    }

    /// The fundamental frequency in hertz.
    pub fn fundamental_hz(&self) -> f64 {
        self.fundamental_hz
    }

    /// The DC offset in volts.
    pub fn offset(&self) -> f64 {
        self.offset
    }

    /// The tone list.
    pub fn tones(&self) -> &[ToneSpec] {
        &self.tones
    }

    /// The period of the composite signal (one fundamental period), seconds.
    pub fn period(&self) -> f64 {
        1.0 / self.fundamental_hz
    }

    /// Highest tone frequency present in the stimulus, hertz.
    pub fn max_frequency(&self) -> f64 {
        let max_h = self.tones.iter().map(|t| t.harmonic).max().unwrap_or(1);
        self.fundamental_hz * max_h as f64
    }

    /// Instantaneous value at time `t` seconds.
    pub fn value(&self, t: f64) -> f64 {
        let w0 = 2.0 * std::f64::consts::PI * self.fundamental_hz;
        self.offset
            + self
                .tones
                .iter()
                .map(|tone| tone.amplitude * (w0 * tone.harmonic as f64 * t + tone.phase_rad).sin())
                .sum::<f64>()
    }

    /// Samples one period (or `periods` periods) at `sample_rate` hertz.
    pub fn sample(&self, periods: u32, sample_rate: f64) -> Waveform {
        Waveform::from_fn(0.0, self.period() * periods as f64, sample_rate, |t| self.value(t))
    }

    /// Sum of the tone amplitudes (worst-case excursion around the offset).
    pub fn amplitude_sum(&self) -> f64 {
        self.tones.iter().map(|t| t.amplitude).sum()
    }

    /// Converts the stimulus into the equivalent SPICE source waveform.
    pub fn to_source_waveform(&self) -> sim_spice_waveform::SourceDescription {
        sim_spice_waveform::SourceDescription {
            offset: self.offset,
            tones: self
                .tones
                .iter()
                .map(|t| (t.amplitude, self.fundamental_hz * t.harmonic as f64, t.phase_rad))
                .collect(),
        }
    }
}

/// A tiny intermediary so that this crate does not depend on `sim-spice`
/// directly (the filter crate converts it into a real source).
pub mod sim_spice_waveform {
    /// Offset plus `(amplitude, frequency_hz, phase_rad)` tones.
    #[derive(Debug, Clone, PartialEq)]
    pub struct SourceDescription {
        /// DC offset in volts.
        pub offset: f64,
        /// `(amplitude, frequency_hz, phase_rad)` per tone.
        pub tones: Vec<(f64, f64, f64)>,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_invalid_specs() {
        assert!(MultitoneSpec::new(0.0, 0.5, vec![ToneSpec::new(1, 0.1)]).is_err());
        assert!(MultitoneSpec::new(1e3, 0.5, vec![]).is_err());
        assert!(MultitoneSpec::new(1e3, 0.5, vec![ToneSpec::new(0, 0.1)]).is_err());
    }

    #[test]
    fn paper_default_period_is_200us() {
        let s = MultitoneSpec::paper_default();
        assert!((s.period() - 200e-6).abs() < 1e-12);
        assert_eq!(s.fundamental_hz(), 5000.0);
        assert_eq!(s.max_frequency(), 25_000.0);
    }

    #[test]
    fn paper_default_stays_in_unit_window() {
        let s = MultitoneSpec::paper_default();
        let w = s.sample(1, 5.0e6);
        assert!(w.min() >= 0.0, "min {}", w.min());
        assert!(w.max() <= 1.0, "max {}", w.max());
        // Should use a good fraction of the window.
        assert!(w.peak_to_peak() > 0.5);
    }

    #[test]
    fn value_is_periodic_with_fundamental() {
        let s = MultitoneSpec::paper_default();
        let t = 37.3e-6;
        assert!((s.value(t) - s.value(t + s.period())).abs() < 1e-9);
    }

    #[test]
    fn sampling_matches_value() {
        let s = MultitoneSpec::new(1e3, 0.2, vec![ToneSpec::new(1, 0.1), ToneSpec::new(2, 0.05)]).unwrap();
        let w = s.sample(2, 1e6);
        assert_eq!(w.len(), 2000);
        let k = 731;
        assert!((w.samples()[k] - s.value(w.time_at(k))).abs() < 1e-12);
    }

    #[test]
    fn amplitude_sum_and_offset() {
        let s = MultitoneSpec::new(1e3, 0.4, vec![ToneSpec::new(1, 0.1), ToneSpec::new(3, 0.2)]).unwrap();
        assert!((s.amplitude_sum() - 0.3).abs() < 1e-12);
        assert_eq!(s.offset(), 0.4);
        assert_eq!(s.tones().len(), 2);
    }

    #[test]
    fn source_description_lists_absolute_frequencies() {
        let s = MultitoneSpec::new(2e3, 0.5, vec![ToneSpec::new(1, 0.1), ToneSpec::new(4, 0.2)]).unwrap();
        let d = s.to_source_waveform();
        assert_eq!(d.offset, 0.5);
        assert_eq!(d.tones[0].1, 2e3);
        assert_eq!(d.tones[1].1, 8e3);
    }

    #[test]
    fn tone_builder_sets_phase() {
        let t = ToneSpec::new(2, 0.3).with_phase(1.0);
        assert_eq!(t.harmonic, 2);
        assert_eq!(t.phase_rad, 1.0);
    }
}
