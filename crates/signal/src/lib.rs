//! # sim-signal
//!
//! Signal-processing substrate for the digital-signature analog test
//! reproduction:
//!
//! * [`Waveform`] — uniformly sampled signals with interpolation and
//!   statistics;
//! * [`MultitoneSpec`] — the harmonically related multitone stimulus used to
//!   excite the circuit under test (§II of the paper);
//! * [`NoiseModel`] — additive white Gaussian measurement noise (§IV-C);
//! * [`fft`](mod@fft) — spectrum utilities used by tests and benches;
//! * [`metrics`] — waveform error metrics used by the baseline methods;
//! * [`Lissajous`] — X-Y composition of two signals.
//!
//! # Examples
//!
//! ```
//! use sim_signal::{Lissajous, MultitoneSpec};
//!
//! # fn main() -> Result<(), sim_signal::SignalError> {
//! let stimulus = MultitoneSpec::paper_default();
//! let x = stimulus.sample(1, 1e6);
//! // A trivially processed "output": the same signal attenuated around 0.5 V.
//! let y = x.map(|v| 0.5 + 0.8 * (v - 0.5));
//! let trajectory = Lissajous::compose(&x, &y)?;
//! assert!(trajectory.within(0.0, 1.0, 0.0, 1.0));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod fft;
pub mod lissajous;
pub mod metrics;
pub mod multitone;
pub mod noise;
pub mod waveform;

pub use fft::{amplitude_spectrum, fft, tone_amplitude, tone_amplitude_projection};
pub use lissajous::Lissajous;
pub use metrics::{correlation, max_abs_error, mean_squared_error, normalized_rms_error, rms_error};
pub use multitone::{MultitoneSpec, ToneSpec};
pub use noise::{standard_normal, NoiseModel};
pub use waveform::{lowpass_in_place, SignalError, Waveform};
