//! Uniformly sampled waveforms.

use std::fmt;

/// Errors produced by waveform operations.
#[derive(Debug, Clone, PartialEq)]
pub enum SignalError {
    /// The operation requires two waveforms with the same sampling grid.
    GridMismatch {
        /// Number of samples of the left operand.
        left: usize,
        /// Number of samples of the right operand.
        right: usize,
    },
    /// The waveform has too few samples for the requested operation.
    TooShort {
        /// Number of samples available.
        len: usize,
        /// Minimum required.
        needed: usize,
    },
    /// An invalid parameter (non-positive sample rate, empty tone list, ...).
    InvalidParameter(String),
}

impl fmt::Display for SignalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SignalError::GridMismatch { left, right } => {
                write!(f, "sampling grids differ ({left} vs {right} samples)")
            }
            SignalError::TooShort { len, needed } => {
                write!(f, "waveform has {len} samples but {needed} are required")
            }
            SignalError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl std::error::Error for SignalError {}

/// A uniformly sampled real-valued waveform.
///
/// The time axis is implicit: sample `k` corresponds to `t0 + k / sample_rate`.
#[derive(Debug, Clone, PartialEq)]
pub struct Waveform {
    start_time: f64,
    sample_rate: f64,
    samples: Vec<f64>,
}

impl Waveform {
    /// Creates a waveform from raw samples.
    ///
    /// # Panics
    /// Panics if `sample_rate` is not strictly positive.
    pub fn new(start_time: f64, sample_rate: f64, samples: Vec<f64>) -> Self {
        assert!(sample_rate > 0.0, "sample rate must be positive");
        Waveform {
            start_time,
            sample_rate,
            samples,
        }
    }

    /// Samples a closure `f(t)` over `[start_time, start_time + duration)` at
    /// `sample_rate` hertz.
    pub fn from_fn(start_time: f64, duration: f64, sample_rate: f64, f: impl Fn(f64) -> f64) -> Self {
        assert!(sample_rate > 0.0, "sample rate must be positive");
        assert!(duration >= 0.0, "duration must be non-negative");
        let n = (duration * sample_rate).round() as usize;
        let samples = (0..n).map(|k| f(start_time + k as f64 / sample_rate)).collect();
        Waveform {
            start_time,
            sample_rate,
            samples,
        }
    }

    /// Builds a waveform from explicit `(time, value)` pairs that are assumed
    /// to be uniformly spaced (as produced by the transient simulator with a
    /// fixed step).
    ///
    /// # Errors
    /// Returns [`SignalError::TooShort`] when fewer than two samples are given
    /// and [`SignalError::InvalidParameter`] when times are not increasing.
    pub fn from_samples(times: &[f64], values: &[f64]) -> Result<Self, SignalError> {
        if times.len() < 2 || values.len() < 2 {
            return Err(SignalError::TooShort {
                len: times.len().min(values.len()),
                needed: 2,
            });
        }
        if times.len() != values.len() {
            return Err(SignalError::GridMismatch {
                left: times.len(),
                right: values.len(),
            });
        }
        let dt = times[1] - times[0];
        if !(dt > 0.0) {
            return Err(SignalError::InvalidParameter(
                "times must be strictly increasing".into(),
            ));
        }
        Ok(Waveform {
            start_time: times[0],
            sample_rate: 1.0 / dt,
            samples: values.to_vec(),
        })
    }

    /// The time of the first sample, seconds.
    pub fn start_time(&self) -> f64 {
        self.start_time
    }

    /// The sample rate in hertz.
    pub fn sample_rate(&self) -> f64 {
        self.sample_rate
    }

    /// The sample period in seconds.
    pub fn dt(&self) -> f64 {
        1.0 / self.sample_rate
    }

    /// The sample values.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the waveform has no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Total covered duration in seconds (`len / sample_rate`).
    pub fn duration(&self) -> f64 {
        self.samples.len() as f64 / self.sample_rate
    }

    /// The time of sample `k`.
    pub fn time_at(&self, k: usize) -> f64 {
        self.start_time + k as f64 / self.sample_rate
    }

    /// Linear interpolation of the waveform at an arbitrary time.
    ///
    /// Times outside the covered range clamp to the first/last sample.
    pub fn value_at(&self, t: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let pos = (t - self.start_time) * self.sample_rate;
        if pos <= 0.0 {
            return self.samples[0];
        }
        let idx = pos.floor() as usize;
        if idx + 1 >= self.samples.len() {
            return *self.samples.last().expect("non-empty");
        }
        let frac = pos - idx as f64;
        self.samples[idx] * (1.0 - frac) + self.samples[idx + 1] * frac
    }

    /// Resamples the waveform onto a new rate over the same time span.
    pub fn resample(&self, new_rate: f64) -> Waveform {
        assert!(new_rate > 0.0, "sample rate must be positive");
        let duration = self.duration();
        Waveform::from_fn(self.start_time, duration, new_rate, |t| self.value_at(t))
    }

    /// Minimum sample value (0.0 for an empty waveform).
    pub fn min(&self) -> f64 {
        self.samples
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
            .min(f64::INFINITY)
            .pipe_finite()
    }

    /// Maximum sample value (0.0 for an empty waveform).
    pub fn max(&self) -> f64 {
        self.samples
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
            .pipe_finite()
    }

    /// Arithmetic mean of the samples (0.0 for an empty waveform).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// Root-mean-square value of the samples.
    pub fn rms(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            (self.samples.iter().map(|x| x * x).sum::<f64>() / self.samples.len() as f64).sqrt()
        }
    }

    /// Peak-to-peak amplitude.
    pub fn peak_to_peak(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.max() - self.min()
        }
    }

    /// Applies a function to every sample, returning a new waveform on the
    /// same grid.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Waveform {
        Waveform {
            start_time: self.start_time,
            sample_rate: self.sample_rate,
            samples: self.samples.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Adds another waveform sample-by-sample.
    ///
    /// # Errors
    /// Returns [`SignalError::GridMismatch`] if the lengths differ.
    pub fn add(&self, other: &Waveform) -> Result<Waveform, SignalError> {
        if self.samples.len() != other.samples.len() {
            return Err(SignalError::GridMismatch {
                left: self.samples.len(),
                right: other.samples.len(),
            });
        }
        Ok(Waveform {
            start_time: self.start_time,
            sample_rate: self.sample_rate,
            samples: self.samples.iter().zip(&other.samples).map(|(a, b)| a + b).collect(),
        })
    }

    /// Clamps every sample into `[lo, hi]` (models supply-rail saturation).
    pub fn clamp(&self, lo: f64, hi: f64) -> Waveform {
        self.map(|x| x.clamp(lo, hi))
    }

    /// Applies a first-order low-pass filter with the given cutoff frequency,
    /// returning the filtered waveform on the same grid.
    ///
    /// This models the finite input bandwidth of an observation front-end
    /// (e.g. the zoning monitor): out-of-band noise is attenuated while
    /// signals well below the cutoff pass essentially unchanged. The filter
    /// state is initialized to the first sample to avoid a start-up step.
    pub fn lowpass(&self, cutoff_hz: f64) -> Waveform {
        let mut samples = self.samples.clone();
        lowpass_in_place(&mut samples, self.dt(), cutoff_hz);
        Waveform {
            start_time: self.start_time,
            sample_rate: self.sample_rate,
            samples,
        }
    }
}

/// In-place version of [`Waveform::lowpass`] over raw samples with period
/// `dt` seconds: the allocation-free primitive behind the batched capture
/// fast path. Produces bit-identical results to [`Waveform::lowpass`] (same
/// recurrence, same operation order).
///
/// # Panics
/// Panics if `cutoff_hz` is not strictly positive.
pub fn lowpass_in_place(samples: &mut [f64], dt: f64, cutoff_hz: f64) {
    assert!(cutoff_hz > 0.0, "cutoff frequency must be positive");
    let Some(&first) = samples.first() else {
        return;
    };
    let alpha = {
        let rc = 1.0 / (2.0 * std::f64::consts::PI * cutoff_hz);
        dt / (dt + rc)
    };
    let mut state = first;
    for x in samples.iter_mut() {
        state += alpha * (*x - state);
        *x = state;
    }
}

trait PipeFinite {
    fn pipe_finite(self) -> f64;
}
impl PipeFinite for f64 {
    fn pipe_finite(self) -> f64 {
        if self.is_finite() {
            self
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_samples_expected_grid() {
        let w = Waveform::from_fn(0.0, 1.0, 10.0, |t| t);
        assert_eq!(w.len(), 10);
        assert!((w.time_at(3) - 0.3).abs() < 1e-12);
        assert!((w.samples()[3] - 0.3).abs() < 1e-12);
        assert!((w.duration() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn value_at_interpolates_and_clamps() {
        let w = Waveform::new(0.0, 1.0, vec![0.0, 1.0, 2.0]);
        assert!((w.value_at(0.5) - 0.5).abs() < 1e-12);
        assert_eq!(w.value_at(-1.0), 0.0);
        assert_eq!(w.value_at(10.0), 2.0);
    }

    #[test]
    fn from_samples_roundtrip() {
        let times = vec![0.0, 0.1, 0.2, 0.3];
        let values = vec![1.0, 2.0, 3.0, 4.0];
        let w = Waveform::from_samples(&times, &values).unwrap();
        assert!((w.sample_rate() - 10.0).abs() < 1e-9);
        assert_eq!(w.samples(), &values[..]);
    }

    #[test]
    fn from_samples_rejects_bad_input() {
        assert!(Waveform::from_samples(&[0.0], &[1.0]).is_err());
        assert!(Waveform::from_samples(&[0.0, 0.1, 0.2], &[1.0, 2.0]).is_err());
        assert!(Waveform::from_samples(&[0.0, 0.0], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn statistics_on_known_signal() {
        let w = Waveform::new(0.0, 1.0, vec![-1.0, 1.0, -1.0, 1.0]);
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.rms(), 1.0);
        assert_eq!(w.min(), -1.0);
        assert_eq!(w.max(), 1.0);
        assert_eq!(w.peak_to_peak(), 2.0);
    }

    #[test]
    fn empty_waveform_statistics_are_zero() {
        let w = Waveform::new(0.0, 1.0, vec![]);
        assert!(w.is_empty());
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.rms(), 0.0);
        assert_eq!(w.value_at(1.0), 0.0);
        assert_eq!(w.peak_to_peak(), 0.0);
    }

    #[test]
    fn resample_preserves_shape() {
        let w = Waveform::from_fn(0.0, 1.0, 100.0, |t| (2.0 * std::f64::consts::PI * 2.0 * t).sin());
        let r = w.resample(1000.0);
        assert_eq!(r.len(), 1000);
        // Values at matching times agree within interpolation error.
        assert!((r.value_at(0.26) - w.value_at(0.26)).abs() < 0.01);
    }

    #[test]
    fn map_add_clamp() {
        let a = Waveform::new(0.0, 1.0, vec![0.0, 1.0, 2.0]);
        let b = a.map(|x| x * 2.0);
        assert_eq!(b.samples(), &[0.0, 2.0, 4.0]);
        let c = a.add(&b).unwrap();
        assert_eq!(c.samples(), &[0.0, 3.0, 6.0]);
        let d = c.clamp(0.0, 4.0);
        assert_eq!(d.samples(), &[0.0, 3.0, 4.0]);
        let mismatched = Waveform::new(0.0, 1.0, vec![1.0]);
        assert!(a.add(&mismatched).is_err());
    }

    #[test]
    fn lowpass_passes_slow_signals_and_attenuates_fast_ones() {
        // 1 kHz signal through a 100 kHz filter: essentially unchanged.
        let slow = Waveform::from_fn(0.0, 2e-3, 1e6, |t| (2.0 * std::f64::consts::PI * 1e3 * t).sin());
        let filtered = slow.lowpass(100e3);
        let err: f64 = slow
            .samples()
            .iter()
            .zip(filtered.samples())
            .skip(100)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        assert!(err < 0.02, "pass-band error {err}");
        // 500 kHz signal through a 50 kHz filter: strongly attenuated.
        let fast = Waveform::from_fn(0.0, 1e-4, 1e7, |t| (2.0 * std::f64::consts::PI * 500e3 * t).sin());
        let attenuated = fast.lowpass(50e3);
        let tail: Vec<f64> = attenuated.samples().iter().copied().skip(500).collect();
        let amp = tail.iter().fold(0.0_f64, |m, &v| m.max(v.abs()));
        assert!(amp < 0.15, "stop-band amplitude {amp}");
    }

    #[test]
    fn lowpass_reduces_white_noise_variance() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        let noisy = Waveform::new(0.0, 4e6, (0..4000).map(|_| rng.gen_range(-0.01..0.01)).collect());
        let filtered = noisy.lowpass(300e3);
        assert!(
            filtered.rms() < 0.6 * noisy.rms(),
            "rms {} vs {}",
            filtered.rms(),
            noisy.rms()
        );
    }

    #[test]
    fn error_display() {
        let e = SignalError::GridMismatch { left: 3, right: 2 };
        assert!(e.to_string().contains("3"));
        let e = SignalError::TooShort { len: 1, needed: 2 };
        assert!(e.to_string().contains("1"));
        let e = SignalError::InvalidParameter("x".into());
        assert!(e.to_string().contains("x"));
    }
}
