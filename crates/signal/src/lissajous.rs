//! Lissajous composition of two signals.
//!
//! The X-Y zoning method observes the trajectory traced by plotting one
//! circuit signal against another, exactly as an oscilloscope in X-Y mode
//! (§II of the paper). When the two signals share a fundamental period the
//! trajectory is closed and periodic.

use crate::waveform::{SignalError, Waveform};

/// A sampled X-Y trajectory: `(x(t_k), y(t_k))` over a common time grid.
#[derive(Debug, Clone, PartialEq)]
pub struct Lissajous {
    times: Vec<f64>,
    points: Vec<(f64, f64)>,
}

impl Lissajous {
    /// Composes two waveforms sampled on the same grid.
    ///
    /// # Errors
    /// Returns [`SignalError::GridMismatch`] when the waveforms have different
    /// lengths and [`SignalError::TooShort`] when fewer than two samples are
    /// available.
    pub fn compose(x: &Waveform, y: &Waveform) -> Result<Self, SignalError> {
        if x.len() != y.len() {
            return Err(SignalError::GridMismatch {
                left: x.len(),
                right: y.len(),
            });
        }
        if x.len() < 2 {
            return Err(SignalError::TooShort {
                len: x.len(),
                needed: 2,
            });
        }
        let times = (0..x.len()).map(|k| x.time_at(k)).collect();
        let points = x.samples().iter().zip(y.samples()).map(|(&a, &b)| (a, b)).collect();
        Ok(Lissajous { times, points })
    }

    /// The sampling times in seconds.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// The `(x, y)` points of the trajectory.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Number of samples in the trajectory.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the trajectory has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Axis-aligned bounding box `((x_min, x_max), (y_min, y_max))`.
    pub fn bounding_box(&self) -> ((f64, f64), (f64, f64)) {
        let mut xb = (f64::INFINITY, f64::NEG_INFINITY);
        let mut yb = (f64::INFINITY, f64::NEG_INFINITY);
        for &(x, y) in &self.points {
            xb.0 = xb.0.min(x);
            xb.1 = xb.1.max(x);
            yb.0 = yb.0.min(y);
            yb.1 = yb.1.max(y);
        }
        (xb, yb)
    }

    /// Whether every point lies inside the closed rectangle
    /// `[x_lo, x_hi] x [y_lo, y_hi]`.
    pub fn within(&self, x_lo: f64, x_hi: f64, y_lo: f64, y_hi: f64) -> bool {
        self.points
            .iter()
            .all(|&(x, y)| x >= x_lo && x <= x_hi && y >= y_lo && y <= y_hi)
    }

    /// Total path length of the trajectory (useful as a curve "fingerprint").
    pub fn path_length(&self) -> f64 {
        self.points
            .windows(2)
            .map(|w| {
                let (x0, y0) = w[0];
                let (x1, y1) = w[1];
                ((x1 - x0).powi(2) + (y1 - y0).powi(2)).sqrt()
            })
            .sum()
    }

    /// Maximum pointwise distance between two trajectories on the same grid.
    ///
    /// # Errors
    /// Returns [`SignalError::GridMismatch`] if the trajectories have a
    /// different number of points.
    pub fn max_distance(&self, other: &Lissajous) -> Result<f64, SignalError> {
        if self.len() != other.len() {
            return Err(SignalError::GridMismatch {
                left: self.len(),
                right: other.len(),
            });
        }
        Ok(self
            .points
            .iter()
            .zip(&other.points)
            .map(|(&(x0, y0), &(x1, y1))| ((x1 - x0).powi(2) + (y1 - y0).powi(2)).sqrt())
            .fold(0.0_f64, f64::max))
    }

    /// How closely the trajectory closes on itself: the distance between the
    /// first and last point. Periodic (whole-period) trajectories close to
    /// within one sample step.
    pub fn closure_gap(&self) -> f64 {
        match (self.points.first(), self.points.last()) {
            (Some(&(x0, y0)), Some(&(x1, y1))) => ((x1 - x0).powi(2) + (y1 - y0).powi(2)).sqrt(),
            _ => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multitone::MultitoneSpec;

    fn circle() -> Lissajous {
        // x = cos, y = sin over one full turn: the unit circle.
        let n = 1000.0;
        let x = Waveform::from_fn(0.0, 1.0, n, |t| (2.0 * std::f64::consts::PI * t).cos());
        let y = Waveform::from_fn(0.0, 1.0, n, |t| (2.0 * std::f64::consts::PI * t).sin());
        Lissajous::compose(&x, &y).unwrap()
    }

    #[test]
    fn compose_rejects_mismatched_grids() {
        let x = Waveform::from_fn(0.0, 1.0, 10.0, |t| t);
        let y = Waveform::from_fn(0.0, 1.0, 20.0, |t| t);
        assert!(Lissajous::compose(&x, &y).is_err());
    }

    #[test]
    fn compose_rejects_tiny_waveforms() {
        let x = Waveform::new(0.0, 1.0, vec![1.0]);
        let y = Waveform::new(0.0, 1.0, vec![1.0]);
        assert!(matches!(Lissajous::compose(&x, &y), Err(SignalError::TooShort { .. })));
    }

    #[test]
    fn circle_has_expected_geometry() {
        let c = circle();
        let ((xmin, xmax), (ymin, ymax)) = c.bounding_box();
        assert!((xmin + 1.0).abs() < 1e-3 && (xmax - 1.0).abs() < 1e-3);
        assert!((ymin + 1.0).abs() < 2e-2 && (ymax - 1.0).abs() < 2e-2);
        // Circumference of the unit circle.
        assert!((c.path_length() - 2.0 * std::f64::consts::PI).abs() < 0.01);
        assert!(c.within(-1.01, 1.01, -1.01, 1.01));
        assert!(!c.within(-0.5, 0.5, -1.01, 1.01));
    }

    #[test]
    fn closure_gap_small_for_full_period() {
        let c = circle();
        assert!(c.closure_gap() < 0.01, "gap {}", c.closure_gap());
    }

    #[test]
    fn max_distance_between_scaled_curves() {
        let x = Waveform::from_fn(0.0, 1.0, 100.0, |t| t);
        let y1 = Waveform::from_fn(0.0, 1.0, 100.0, |t| t);
        let y2 = Waveform::from_fn(0.0, 1.0, 100.0, |t| t + 0.1);
        let a = Lissajous::compose(&x, &y1).unwrap();
        let b = Lissajous::compose(&x, &y2).unwrap();
        assert!((a.max_distance(&b).unwrap() - 0.1).abs() < 1e-12);
        let short = Lissajous::compose(
            &Waveform::from_fn(0.0, 0.5, 100.0, |t| t),
            &Waveform::from_fn(0.0, 0.5, 100.0, |t| t),
        )
        .unwrap();
        assert!(a.max_distance(&short).is_err());
    }

    #[test]
    fn multitone_composition_stays_in_unit_square() {
        let stim = MultitoneSpec::paper_default();
        let x = stim.sample(1, 2e6);
        // A crude "filter": attenuate and phase-shift the signal slightly.
        let y = Waveform::from_fn(0.0, stim.period(), 2e6, |t| 0.5 + (stim.value(t - 8e-6) - 0.5) * 0.9);
        let lis = Lissajous::compose(&x, &y).unwrap();
        assert!(lis.within(0.0, 1.0, 0.0, 1.0));
        assert!(lis.path_length() > 1.0);
    }
}
