//! Radix-2 FFT and spectrum helpers.
//!
//! Used by tests and benches to verify the spectral content of multitone
//! stimuli and filter outputs (e.g. that a low-pass CUT attenuates the tones
//! above its natural frequency).

use crate::waveform::{SignalError, Waveform};

/// A complex spectrum bin value `(re, im)`.
pub type Bin = (f64, f64);

/// In-place iterative radix-2 Cooley-Tukey FFT.
///
/// # Errors
/// Returns [`SignalError::InvalidParameter`] if the input length is not a
/// power of two (or is zero).
pub fn fft(input: &[Bin]) -> Result<Vec<Bin>, SignalError> {
    let n = input.len();
    if n == 0 || n & (n - 1) != 0 {
        return Err(SignalError::InvalidParameter(format!(
            "FFT length must be a non-zero power of two (got {n})"
        )));
    }
    let mut data = input.to_vec();

    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u32).reverse_bits() >> (32 - bits);
        let j = j as usize;
        if j > i {
            data.swap(i, j);
        }
    }

    // Butterfly stages.
    let mut len = 2;
    while len <= n {
        let angle = -2.0 * std::f64::consts::PI / len as f64;
        let (wr, wi) = (angle.cos(), angle.sin());
        for start in (0..n).step_by(len) {
            let mut cur = (1.0_f64, 0.0_f64);
            for k in 0..len / 2 {
                let (ar, ai) = data[start + k];
                let (br, bi) = data[start + k + len / 2];
                let tr = br * cur.0 - bi * cur.1;
                let ti = br * cur.1 + bi * cur.0;
                data[start + k] = (ar + tr, ai + ti);
                data[start + k + len / 2] = (ar - tr, ai - ti);
                cur = (cur.0 * wr - cur.1 * wi, cur.0 * wi + cur.1 * wr);
            }
        }
        len <<= 1;
    }
    Ok(data)
}

/// Single-sided amplitude spectrum of a waveform.
///
/// The waveform is truncated to the largest power-of-two length. Returns
/// `(frequencies_hz, amplitudes)` for bins `0..n/2`.
///
/// # Errors
/// Returns [`SignalError::TooShort`] if fewer than two samples are available.
pub fn amplitude_spectrum(waveform: &Waveform) -> Result<(Vec<f64>, Vec<f64>), SignalError> {
    let n_full = waveform.len();
    if n_full < 2 {
        return Err(SignalError::TooShort { len: n_full, needed: 2 });
    }
    let n = 1usize << (usize::BITS - 1 - n_full.leading_zeros());
    let input: Vec<Bin> = waveform.samples()[..n].iter().map(|&x| (x, 0.0)).collect();
    let bins = fft(&input)?;
    let df = waveform.sample_rate() / n as f64;
    let mut freqs = Vec::with_capacity(n / 2);
    let mut amps = Vec::with_capacity(n / 2);
    for (k, &(re, im)) in bins.iter().take(n / 2).enumerate() {
        freqs.push(k as f64 * df);
        let scale = if k == 0 { 1.0 / n as f64 } else { 2.0 / n as f64 };
        amps.push((re * re + im * im).sqrt() * scale);
    }
    Ok((freqs, amps))
}

/// Amplitude of a single tone estimated by direct projection (one-bin DFT)
/// over the *entire* waveform, without truncation to a power of two.
///
/// This is the right tool when the waveform covers an integer number of tone
/// periods but its length is not a power of two (e.g. transient-simulation
/// output); [`tone_amplitude`] is faster for long, power-of-two captures.
///
/// # Errors
/// Returns [`SignalError::TooShort`] if fewer than two samples are available.
pub fn tone_amplitude_projection(waveform: &Waveform, frequency_hz: f64) -> Result<f64, SignalError> {
    if waveform.len() < 2 {
        return Err(SignalError::TooShort {
            len: waveform.len(),
            needed: 2,
        });
    }
    let n = waveform.len() as f64;
    let mut re = 0.0;
    let mut im = 0.0;
    for (k, &v) in waveform.samples().iter().enumerate() {
        let t = waveform.time_at(k);
        let phase = 2.0 * std::f64::consts::PI * frequency_hz * t;
        re += v * phase.cos();
        im += v * phase.sin();
    }
    if frequency_hz == 0.0 {
        return Ok((re / n).abs());
    }
    Ok(2.0 * (re * re + im * im).sqrt() / n)
}

/// Returns the amplitude of the spectrum bin closest to `frequency_hz`.
///
/// # Errors
/// Propagates the errors of [`amplitude_spectrum`].
pub fn tone_amplitude(waveform: &Waveform, frequency_hz: f64) -> Result<f64, SignalError> {
    let (freqs, amps) = amplitude_spectrum(waveform)?;
    let idx = freqs
        .iter()
        .enumerate()
        .min_by(|a, b| {
            (a.1 - frequency_hz)
                .abs()
                .partial_cmp(&(b.1 - frequency_hz).abs())
                .expect("finite frequencies")
        })
        .map(|(i, _)| i)
        .unwrap_or(0);
    Ok(amps[idx])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multitone::{MultitoneSpec, ToneSpec};

    #[test]
    fn fft_rejects_non_power_of_two() {
        assert!(fft(&[(1.0, 0.0); 3]).is_err());
        assert!(fft(&[]).is_err());
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut input = vec![(0.0, 0.0); 8];
        input[0] = (1.0, 0.0);
        let out = fft(&input).unwrap();
        for &(re, im) in &out {
            assert!((re - 1.0).abs() < 1e-12);
            assert!(im.abs() < 1e-12);
        }
    }

    #[test]
    fn fft_of_dc_concentrates_in_bin_zero() {
        let input = vec![(1.0, 0.0); 16];
        let out = fft(&input).unwrap();
        assert!((out[0].0 - 16.0).abs() < 1e-9);
        for &(re, im) in &out[1..] {
            assert!(re.abs() < 1e-9 && im.abs() < 1e-9);
        }
    }

    #[test]
    fn spectrum_recovers_sine_amplitude_and_frequency() {
        // 1 kHz sine, amplitude 0.7, sampled at 32.768 kHz for exactly 1024 samples.
        let fs = 32_768.0;
        let w = Waveform::from_fn(0.0, 1024.0 / fs, fs, |t| {
            0.7 * (2.0 * std::f64::consts::PI * 1024.0 * t).sin()
        });
        let amp = tone_amplitude(&w, 1024.0).unwrap();
        assert!((amp - 0.7).abs() < 1e-6, "amp {amp}");
    }

    #[test]
    fn spectrum_separates_multitone_components() {
        // Use a power-of-two-friendly fundamental so bins align exactly.
        let fs = 1_048_576.0; // 2^20 Hz
        let spec = MultitoneSpec::new(4096.0, 0.5, vec![ToneSpec::new(1, 0.3), ToneSpec::new(3, 0.1)]).unwrap();
        let w = Waveform::from_fn(0.0, 256.0 / 4096.0 / 256.0 * 256.0, fs, |t| spec.value(t));
        // 1/4096 s at fs = 256 samples: power of two.
        let a1 = tone_amplitude(&w, 4096.0).unwrap();
        let a3 = tone_amplitude(&w, 3.0 * 4096.0).unwrap();
        let dc = tone_amplitude(&w, 0.0).unwrap();
        assert!((a1 - 0.3).abs() < 0.01, "a1 {a1}");
        assert!((a3 - 0.1).abs() < 0.01, "a3 {a3}");
        assert!((dc - 0.5).abs() < 0.01, "dc {dc}");
    }

    #[test]
    fn spectrum_requires_two_samples() {
        let w = Waveform::new(0.0, 1.0, vec![1.0]);
        assert!(amplitude_spectrum(&w).is_err());
        assert!(tone_amplitude_projection(&w, 1.0).is_err());
    }

    #[test]
    fn projection_recovers_amplitude_without_power_of_two_length() {
        // 3 kHz sine, amplitude 0.4, sampled over exactly two periods with a
        // deliberately non-power-of-two sample count.
        let f = 3000.0;
        let w = Waveform::from_fn(0.0, 2.0 / f, 3e6, |t| {
            0.2 + 0.4 * (2.0 * std::f64::consts::PI * f * t + 0.7).sin()
        });
        assert!(w.len() & (w.len() - 1) != 0, "length should not be a power of two");
        let amp = tone_amplitude_projection(&w, f).unwrap();
        assert!((amp - 0.4).abs() < 1e-3, "amp {amp}");
        let dc = tone_amplitude_projection(&w, 0.0).unwrap();
        assert!((dc - 0.2).abs() < 1e-3, "dc {dc}");
    }
}
