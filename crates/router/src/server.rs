//! The TCP router front: an accept loop speaking the `dsig-serve` wire
//! protocol (`DSRQ`/`DSRM`/`DSGP`/`DSGF`/`DSMX` in, `DSRS`/`DSRA`/`DSMR`
//! out), fanning every request out across the backend fleet through the
//! routing core. The fleet-observability frames (`DSFM`/`DSFT` aggregated
//! scrapes, `DSEX` event drain, `DSHC` health check) are answered here too —
//! the router is the natural aggregation point for a fleet.
//!
//! # Architecture
//!
//! ```text
//!  tester ──DSRQ/DSRM──▶ ┌─────────────────────┐ ──DSRQ──▶ backend A (dsig-serve)
//!  tester ──DSRQ/DSRM──▶ │  Router             │ ──DSRQ──▶ backend B
//!                        │  HRW(golden_key)    │ ──DSGP──▶ backend C  (replication)
//!  RouterHandle ───────▶ │  + health/failover  │ ◀─DSGF──  readback on miss
//!                        └─────────────────────┘
//! ```
//!
//! A request's `golden_fingerprint` picks its owner backend by rendezvous
//! hashing; multi-golden batches split into per-backend sub-batches and
//! reassemble in request order. Scoring stays bit-identical to a direct
//! `TestFlow` loop at every backend count, because the router never touches
//! a score — it only decides *where* the pure scoring function runs.

use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use dsig_obs::trace;
use dsig_serve::mux::{self, WorkPool};
use dsig_serve::proto::{
    decode_any_request, decode_request_context, encode_admin_response, encode_decode_error, encode_events_response,
    encode_health_response, encode_metrics_response, encode_response, encode_retest_response, encode_traces_response,
    AdminResponse, ErrorCode, EventsResponse, HealthResponse, MetricsResponse, Request, RetestResponse, ScreenResponse,
    TracesResponse,
};

use crate::backend::Backend;
use crate::error::{Result, RouterError};
use crate::handle::RouterHandle;
use crate::router::{RouterConfig, RouterCore};
use crate::store::RouterStore;

/// Maps a router error onto the wire error code it travels as.
fn error_code_of(err: &RouterError) -> ErrorCode {
    match err {
        RouterError::UnknownGolden(_) => ErrorCode::UnknownGolden,
        _ => ErrorCode::Internal,
    }
}

/// Maps an admin-verb failure onto its wire code: rejected verbs
/// (unparseable label, unknown drain target, removing the last member, a
/// rendezvous-id collision) are the caller's fault — `BadRequest`, so a
/// resubmitting client knows retrying verbatim cannot succeed.
fn admin_error_code_of(err: &RouterError) -> ErrorCode {
    match err {
        RouterError::Dsig(dsig_core::DsigError::InvalidConfig(_)) => ErrorCode::BadRequest,
        _ => ErrorCode::Internal,
    }
}

/// The routing tier's TCP front: shares one routing core between the
/// accept loop and any number of in-process [`RouterHandle`]s.
///
/// Dropping (or [`Router::shutdown`]-ing) the router stops accepting new
/// connections; in-flight connections finish serving their streams.
pub struct Router {
    local_addr: SocketAddr,
    core: Arc<RouterCore>,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl Router {
    /// Binds a listener (use port 0 for an ephemeral port) in front of a
    /// backend fleet and starts routing.
    ///
    /// # Errors
    /// Returns [`RouterError::Io`] if the listener cannot be bound,
    /// [`RouterError::NoBackends`] for an empty fleet and an invalid-config
    /// error for duplicate rendezvous ids.
    pub fn bind(
        addr: impl ToSocketAddrs,
        backends: Vec<Backend>,
        store: RouterStore,
        config: RouterConfig,
    ) -> Result<Router> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let core = Arc::new(RouterCore::new(backends, store, config)?);

        let shutdown = Arc::new(AtomicBool::new(false));
        let accept_core = Arc::clone(&core);
        let accept_shutdown = Arc::clone(&shutdown);
        // One request-processing pool shared by every downstream connection:
        // thousands of pipelined testers fan in over it, while each backend
        // is reached through one multiplexed upstream connection.
        let pool = Arc::new(WorkPool::new(dsig_engine::available_threads()));
        let accept_thread = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_shutdown.load(Ordering::SeqCst) {
                    break;
                }
                match stream {
                    Ok(stream) => {
                        let conn_core = Arc::clone(&accept_core);
                        let conn_pool = Arc::clone(&pool);
                        // Connection threads are detached; they exit when the
                        // peer closes its end of the stream.
                        std::thread::spawn(move || handle_connection(stream, conn_core, conn_pool));
                    }
                    // Back off briefly on accept errors instead of spinning.
                    Err(_) => std::thread::sleep(std::time::Duration::from_millis(10)),
                }
            }
        });

        Ok(Router {
            local_addr,
            core,
            shutdown,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address the router is listening on (with the real port when bound
    /// to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A new in-process handle to the routing core (no TCP round-trip).
    pub fn handle(&self) -> RouterHandle {
        RouterHandle::from_core(Arc::clone(&self.core))
    }

    /// Stops accepting connections and joins the accept loop. Idempotent;
    /// also invoked on drop.
    pub fn shutdown(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the blocking accept with a throwaway connection (dialing the
        // loopback equivalent of a wildcard bind address).
        let mut wake = self.local_addr;
        if wake.ip().is_unspecified() {
            wake.set_ip(match wake {
                SocketAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
                SocketAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
            });
        }
        let woke = TcpStream::connect_timeout(&wake, std::time::Duration::from_secs(1)).is_ok();
        if let Some(thread) = self.accept_thread.take() {
            if woke {
                let _ = thread.join();
            }
            // A failed wake leaves the thread detached rather than hanging
            // the caller; it exits at the next connection attempt.
        }
    }
}

impl Drop for Router {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Serves one TCP connection through the shared [`WorkPool`]: tagged
/// requests route as pool jobs completing out of order, untagged ones keep
/// their in-order semantics (see [`mux::drive_connection`]).
fn handle_connection(stream: TcpStream, core: Arc<RouterCore>, pool: Arc<WorkPool>) {
    let respond_to = Arc::new(move |payload: Vec<u8>| {
        // Pin the caller's trace context per request so the routing spans
        // parent under the remote caller even when pool workers interleave
        // requests from many testers.
        let _ctx = trace::with_context(decode_request_context(&payload));
        match decode_any_request(&payload) {
            Ok(request) => respond(&core, request),
            Err(err) => encode_decode_error(&payload, err.to_string()),
        }
    });
    mux::drive_connection(stream, &pool, respond_to);
}

/// Builds the response frame for one decoded request — the router answers
/// the same request kinds a serving process does, after fanning out.
fn respond(core: &RouterCore, request: Request) -> Vec<u8> {
    match request {
        Request::Screen(request) => encode_response(&match core.screen(request.golden_key, &request.signatures) {
            Ok(results) => ScreenResponse::Results(results),
            Err(err) => ScreenResponse::Error {
                code: error_code_of(&err),
                message: err.to_string(),
            },
        }),
        Request::MultiScreen(request) => encode_response(&match core.screen_multi(&request.items) {
            Ok(results) => ScreenResponse::Results(results),
            Err(err) => ScreenResponse::Error {
                code: error_code_of(&err),
                message: err.to_string(),
            },
        }),
        Request::Retest(request) => encode_retest_response(&match core.screen_retest(&request) {
            Ok(results) => RetestResponse::Results(results),
            Err(err) => RetestResponse::Error {
                code: error_code_of(&err),
                message: err.to_string(),
            },
        }),
        Request::PushGolden { key, band, golden } => {
            encode_admin_response(&match core.push_golden(key, golden, band) {
                Ok(()) => AdminResponse::Ack,
                Err(err) => AdminResponse::Error {
                    code: error_code_of(&err),
                    message: err.to_string(),
                },
            })
        }
        Request::FetchGolden { key } => encode_admin_response(&match core.golden(key) {
            Ok(record) => AdminResponse::Record {
                band: record.band,
                golden: record.golden.clone(),
            },
            Err(err) => AdminResponse::Error {
                code: error_code_of(&err),
                message: err.to_string(),
            },
        }),
        Request::Metrics => encode_metrics_response(&MetricsResponse::Snapshot(core.metrics())),
        Request::Traces => encode_traces_response(&TracesResponse::Log(core.traces())),
        // The fleet scrapes fan out to every backend and merge; the router's
        // own plain `DSMX`/`DSTX` answers above stay backend-free.
        Request::FleetMetrics => encode_metrics_response(&MetricsResponse::Snapshot(core.fleet_metrics())),
        Request::FleetTraces => encode_traces_response(&TracesResponse::Log(core.fleet_traces())),
        Request::Events => encode_events_response(&EventsResponse::Log(core.events())),
        Request::Health => encode_health_response(&HealthResponse::Report(core.health())),
        // The admin family: live membership over the same tagged mux the
        // work frames ride. Every verb answers the post-change roster.
        Request::Admin(admin) => encode_admin_response(&match core.admin(&admin) {
            Ok(roster) => AdminResponse::Roster(roster),
            Err(err) => AdminResponse::Error {
                code: admin_error_code_of(&err),
                message: err.to_string(),
            },
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::RouterClient;
    use dsig_core::{AcceptanceBand, Signature, SignatureEntry, TestOutcome, ZoneCode};
    use dsig_serve::{GoldenStore, ServeConfig, ServeHandle};

    fn sig(codes: &[(u32, f64)]) -> Signature {
        Signature::new(
            codes
                .iter()
                .map(|&(c, d)| SignatureEntry {
                    code: ZoneCode(c),
                    duration: d,
                })
                .collect(),
        )
        .unwrap()
    }

    fn local_fleet(count: usize) -> Vec<Backend> {
        (0..count)
            .map(|id| {
                Backend::local(
                    id as u64,
                    ServeHandle::spawn(std::sync::Arc::new(GoldenStore::new()), ServeConfig::with_shards(1)),
                )
            })
            .collect()
    }

    #[test]
    fn tcp_router_round_trips_all_request_kinds() {
        let router = Router::bind(
            "127.0.0.1:0",
            local_fleet(3),
            RouterStore::new(),
            RouterConfig::default(),
        )
        .unwrap();
        let mut client = RouterClient::connect(router.local_addr()).unwrap();
        let band = AcceptanceBand::new(0.05).unwrap();
        let golden_a = sig(&[(1, 100e-6), (3, 100e-6)]);
        let golden_b = sig(&[(2, 100e-6), (4, 100e-6)]);
        client.push_golden(0xA, band, &golden_a).unwrap();
        client.push_golden(0xB, band, &golden_b).unwrap();

        // Single-golden screening, routed.
        let results = client
            .screen(0xA, &[golden_a.clone(), sig(&[(1, 100e-6), (7, 100e-6)])])
            .unwrap();
        assert_eq!(results[0].ndf, 0.0);
        assert_eq!(results[0].outcome, TestOutcome::Pass);
        assert!(results[1].ndf > 0.0);
        // The TCP path equals the in-process path bit-for-bit.
        let direct = router
            .handle()
            .screen(0xA, &[golden_a.clone(), sig(&[(1, 100e-6), (7, 100e-6)])])
            .unwrap();
        assert_eq!(results, direct);

        // Multi-golden screening across both goldens.
        let items = vec![
            (0xA, golden_a.clone()),
            (0xB, golden_b.clone()),
            (0xA, golden_a.clone()),
        ];
        let multi = client.screen_multi(&items).unwrap();
        assert_eq!(multi.len(), 3);
        assert!(multi.iter().all(|r| r.ndf == 0.0));

        // Adaptive retest over TCP: identical to the in-process route.
        let retest = dsig_serve::RetestRequest {
            golden_key: 0xA,
            policy: dsig_core::RetestPolicy::new(0.03, vec![2]).unwrap(),
            items: vec![dsig_serve::RetestItem {
                initial: sig(&[(1, 100e-6), (3, 92e-6), (7, 8e-6)]),
                repeats: vec![sig(&[(1, 100e-6), (3, 88e-6), (7, 12e-6)]); 2],
            }],
        };
        let retested = client.screen_retest(&retest).unwrap();
        assert_eq!(retested, router.handle().screen_retest(&retest).unwrap());
        assert_eq!(retested.len(), 1);
        assert!(retested[0].marginal);

        // Readback over TCP.
        let (fetched_band, fetched) = client.fetch_golden(0xB).unwrap();
        assert_eq!(fetched_band, band);
        assert_eq!(fetched, golden_b);
        assert!(client.fetch_golden(0xDEAD).is_err());
        // Unknown goldens carry the code through the router.
        assert!(matches!(
            client.screen(0xDEAD, &[golden_a]),
            Err(RouterError::UnknownGolden(0xDEAD))
        ));
    }

    #[test]
    fn tcp_metrics_scrape_reports_live_router_counters() {
        let router = Router::bind(
            "127.0.0.1:0",
            local_fleet(2),
            RouterStore::new(),
            RouterConfig::default(),
        )
        .unwrap();
        let mut client = RouterClient::connect(router.local_addr()).unwrap();
        let golden = sig(&[(1, 100e-6), (3, 100e-6)]);
        client
            .push_golden(0x11, AcceptanceBand::new(0.05).unwrap(), &golden)
            .unwrap();

        let before = client.metrics().unwrap();
        client.screen(0x11, &[golden.clone(), golden.clone()]).unwrap();
        let after = client.metrics().unwrap();

        // The registry is process-global, so assert monotonic deltas only.
        let forwards = |snapshot: &dsig_obs::MetricsSnapshot| -> u64 {
            (0..2)
                .map(|i| {
                    snapshot
                        .counter(&format!("router.backend.local-{i}.forwards"))
                        .unwrap_or(0)
                })
                .sum()
        };
        assert!(forwards(&after) > forwards(&before));
        assert!(after.histogram("router.fanout_us").is_some());
        // The TCP scrape decodes to the same shape the in-process scrape has.
        let backend_metrics = |snapshot: &dsig_obs::MetricsSnapshot| {
            snapshot
                .metrics
                .iter()
                .filter(|(name, _)| name.starts_with("router.backend"))
                .count()
        };
        assert_eq!(backend_metrics(&after), backend_metrics(&router.handle().metrics()));
    }

    #[test]
    fn shutdown_is_idempotent_and_handles_survive() {
        let mut router = Router::bind(
            "127.0.0.1:0",
            local_fleet(2),
            RouterStore::new(),
            RouterConfig::default(),
        )
        .unwrap();
        let handle = router.handle();
        router.shutdown();
        router.shutdown();
        // The in-process path still works after the listener is gone.
        let band = AcceptanceBand::new(0.05).unwrap();
        let golden = sig(&[(1, 100e-6)]);
        handle.push_golden(5, golden.clone(), band).unwrap();
        assert_eq!(handle.screen_one(5, &golden).unwrap().ndf, 0.0);
    }
}
