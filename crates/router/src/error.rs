//! Error type of the routing tier.

use std::fmt;

use dsig_core::DsigError;
use dsig_serve::ServeError;

/// Errors produced by the router, its backends and the router client.
#[derive(Debug)]
pub enum RouterError {
    /// The router was built with an empty backend set.
    NoBackends,
    /// No backend (and not the router's own store) holds the fingerprint.
    UnknownGolden(u64),
    /// Every backend in the rendezvous ranking failed the request. Carries
    /// the per-backend failure summary in rank order.
    AllBackendsFailed {
        /// The golden fingerprint being routed.
        key: u64,
        /// One rendered failure per attempted backend, rank order.
        detail: String,
    },
    /// A backend (or the router's listener) reported a serving-layer error.
    Serve(ServeError),
    /// Local characterization or scoring failed.
    Dsig(DsigError),
    /// A socket operation failed.
    Io(std::io::Error),
}

impl RouterError {
    /// Collapses this error into the core error vocabulary, for code that
    /// speaks [`dsig_core::Result`] (the engine's remote scoring target).
    pub fn into_dsig(self) -> DsigError {
        match self {
            RouterError::Dsig(err) => err,
            RouterError::Serve(err) => err.into_dsig(),
            other => DsigError::Remote(other.to_string()),
        }
    }
}

impl fmt::Display for RouterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouterError::NoBackends => write!(f, "the router has no backends"),
            RouterError::UnknownGolden(key) => {
                write!(f, "no golden signature stored under fingerprint {key:#018x}")
            }
            RouterError::AllBackendsFailed { key, detail } => {
                write!(f, "every backend failed for fingerprint {key:#018x}: {detail}")
            }
            RouterError::Serve(err) => write!(f, "backend error: {err}"),
            RouterError::Dsig(err) => write!(f, "scoring failed: {err}"),
            RouterError::Io(err) => write!(f, "i/o failed: {err}"),
        }
    }
}

impl std::error::Error for RouterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RouterError::Serve(err) => Some(err),
            RouterError::Dsig(err) => Some(err),
            RouterError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<ServeError> for RouterError {
    fn from(err: ServeError) -> Self {
        match err {
            ServeError::UnknownGolden(key) => RouterError::UnknownGolden(key),
            other => RouterError::Serve(other),
        }
    }
}

impl From<DsigError> for RouterError {
    fn from(err: DsigError) -> Self {
        RouterError::Dsig(err)
    }
}

impl From<std::io::Error> for RouterError {
    fn from(err: std::io::Error) -> Self {
        RouterError::Io(err)
    }
}

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, RouterError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_sources_and_conversions() {
        use std::error::Error;
        assert!(RouterError::NoBackends.to_string().contains("no backends"));
        assert!(RouterError::NoBackends.source().is_none());
        assert!(RouterError::UnknownGolden(0xAB)
            .to_string()
            .contains("0x00000000000000ab"));
        let all = RouterError::AllBackendsFailed {
            key: 1,
            detail: "b0: closed; b1: closed".into(),
        };
        assert!(all.to_string().contains("every backend failed"));
        let e: RouterError = ServeError::Closed.into();
        assert!(e.to_string().contains("backend error"));
        assert!(e.source().is_some());
        // Serve-side unknown goldens normalize onto the router's own variant.
        let e: RouterError = ServeError::UnknownGolden(9).into();
        assert!(matches!(e, RouterError::UnknownGolden(9)));
        let e: RouterError = DsigError::InvalidConfig("x".into()).into();
        assert!(matches!(e.into_dsig(), DsigError::InvalidConfig(_)));
        let e: RouterError = std::io::Error::new(std::io::ErrorKind::ConnectionRefused, "refused").into();
        assert!(matches!(e.into_dsig(), DsigError::Remote(msg) if msg.contains("refused")));
    }
}
