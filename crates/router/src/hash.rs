//! Rendezvous (highest-random-weight) hashing of golden fingerprints onto
//! backends.
//!
//! Each `(golden_key, backend_id)` pair gets a pseudo-random weight; the
//! backend with the highest weight **owns** the key, the runner-up is its
//! first replica, and so on. The ranking is a pure function of the key and
//! the backend ids, so:
//!
//! * every router instance (and every retry) routes a key identically —
//!   deterministic failover means the replica chosen when the owner is down
//!   is always the same one;
//! * adding or removing a backend only remaps the keys that backend owned
//!   (the classic HRW minimal-disruption property) — the relative order of
//!   the surviving backends never changes.

/// The SplitMix64 finalizer: a cheap, well-mixed 64-bit permutation (the
/// same mixer the engine uses for per-device seed derivation).
pub fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// The rendezvous weight of a backend for a golden fingerprint. The backend
/// id is mixed before combining so that ids `0, 1, 2, …` (the in-process
/// default) spread as well as hashed addresses.
pub fn hrw_weight(golden_key: u64, backend_id: u64) -> u64 {
    mix64(golden_key ^ mix64(backend_id))
}

/// Ranks backend indices by descending rendezvous weight for a fingerprint:
/// `rank[0]` owns the key, `rank[1]` is the first replica, and so on. Ties
/// (only possible with duplicate ids) break toward the smaller index, so the
/// order is total and deterministic.
pub fn rank_backends(golden_key: u64, ids: &[u64]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..ids.len()).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(hrw_weight(golden_key, ids[i])), i));
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranking_is_deterministic_and_total() {
        let ids: Vec<u64> = (0..8).collect();
        for key in [0u64, 1, 0xFEED_BEEF, u64::MAX] {
            let a = rank_backends(key, &ids);
            let b = rank_backends(key, &ids);
            assert_eq!(a, b);
            let mut seen = a.clone();
            seen.sort_unstable();
            assert_eq!(seen, (0..8).collect::<Vec<usize>>(), "rank must be a permutation");
        }
    }

    #[test]
    fn removing_a_backend_preserves_the_relative_order_of_the_rest() {
        // The HRW property behind minimal disruption *and* deterministic
        // failover: dropping one backend never reorders the others.
        let ids: Vec<u64> = (0..6).collect();
        for key in 0..200u64 {
            let full = rank_backends(key, &ids);
            let removed = full[0]; // kill the owner
            let surviving_ids: Vec<u64> = ids.iter().copied().filter(|&id| id != ids[removed]).collect();
            let shrunk = rank_backends(key, &surviving_ids);
            let expectation: Vec<u64> = full[1..].iter().map(|&i| ids[i]).collect();
            let got: Vec<u64> = shrunk.iter().map(|&i| surviving_ids[i]).collect();
            assert_eq!(got, expectation, "key {key}");
        }
    }

    #[test]
    fn ownership_spreads_over_backends() {
        let ids: Vec<u64> = (0..4).collect();
        let mut owned = [0usize; 4];
        for key in 0..4000u64 {
            owned[rank_backends(mix64(key), &ids)[0]] += 1;
        }
        for (backend, &count) in owned.iter().enumerate() {
            assert!(
                (700..=1300).contains(&count),
                "backend {backend} owns {count} of 4000 keys — distribution is skewed: {owned:?}"
            );
        }
    }

    #[test]
    fn mix64_is_deterministic_and_spreads_neighbors() {
        assert_ne!(mix64(1), mix64(2));
        assert_eq!(mix64(42), mix64(42));
        // The finalizer fixes 0 (0 ^ 0 * m == 0), which is why hrw_weight
        // mixes the backend id before combining with the key.
        assert_eq!(mix64(0), 0);
        assert_ne!(hrw_weight(0, 0), hrw_weight(0, 1));
    }
}
