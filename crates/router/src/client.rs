//! The TCP clients of a [`crate::Router`].
//!
//! The router speaks the `dsig-serve` wire protocol, so these are thin
//! wrappers that add the router's error vocabulary: [`RouterClient`] over
//! the blocking [`ServeClient`] (one request in flight), and
//! [`PipelinedRouterClient`] over the multiplexed
//! [`dsig_serve::PipelinedClient`] (N requests in flight on one connection,
//! matched by request id). Both inherit the one-shot transparent reconnect —
//! see the `dsig_serve::client` module docs for the exact resubmission
//! rules under pipelining.

use std::net::{SocketAddr, ToSocketAddrs};

use dsig_core::{AcceptanceBand, Signature};
use dsig_obs::{EventLog, HealthReport, MetricsSnapshot, TraceLog};
use dsig_serve::{
    FleetAdmin, FleetRoster, ObsScrape, PipelinedClient, RetestRequest, RetestScore, ScoreResult, Screen, ServeClient,
    Ticket,
};

use crate::error::Result;

/// A blocking client over one TCP connection to a routing tier.
///
/// # Examples
///
/// Characterize a golden through the router (which replicates it to the
/// owning backends), then screen a deviated device over loopback:
///
/// ```
/// use std::sync::Arc;
/// use cut_filters::BiquadParams;
/// use dsig_core::{AcceptanceBand, TestSetup};
/// use dsig_router::{Backend, Router, RouterClient, RouterConfig, RouterStore};
/// use dsig_serve::{GoldenStore, ServeConfig, ServeHandle};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Two in-process scoring backends fronted by a TCP router.
/// let fleet: Vec<Backend> = (0..2)
///     .map(|id| Backend::local(id, ServeHandle::spawn(Arc::new(GoldenStore::new()), ServeConfig::with_shards(1))))
///     .collect();
/// let router = Router::bind("127.0.0.1:0", fleet, RouterStore::new(), RouterConfig::default())?;
///
/// // Characterization: once, through the router — the golden lands on its
/// // rendezvous owner and replica.
/// let setup = TestSetup::paper_default()?.with_sample_rate(1e6)?;
/// let reference = BiquadParams::paper_default();
/// let key = router.handle().characterize(&setup, &reference, AcceptanceBand::new(0.03)?)?;
///
/// // Production test: capture a signature, upload, decide.
/// let observed = setup.signature_of(&reference.with_f0_shift_pct(10.0), 7)?;
/// let mut client = RouterClient::connect(router.local_addr())?;
/// let score = client.screen_one(key, &observed)?;
/// assert!(score.ndf > 0.0);
/// # Ok(())
/// # }
/// ```
pub struct RouterClient {
    inner: ServeClient,
}

impl RouterClient {
    /// Connects to a routing tier.
    ///
    /// # Errors
    /// Returns [`crate::RouterError::Serve`] on connection errors.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self> {
        Ok(RouterClient {
            inner: ServeClient::connect(addr)?,
        })
    }

    /// The router address this client is connected to (and reconnects to).
    pub fn peer_addr(&self) -> SocketAddr {
        self.inner.peer_addr()
    }

    /// Scores a batch of observed signatures against the golden stored under
    /// `golden_key`, routed to the owning backend, returning one
    /// [`ScoreResult`] per signature in request order — bit-identical to
    /// direct [`dsig_core::TestFlow`] scoring at every backend count.
    ///
    /// # Errors
    /// Returns [`crate::RouterError::UnknownGolden`] when neither the router
    /// store nor any backend holds the fingerprint, and
    /// [`crate::RouterError::Serve`] on transport or remote failures.
    pub fn screen(&mut self, golden_key: u64, signatures: &[Signature]) -> Result<Vec<ScoreResult>> {
        self.inner.screen(golden_key, signatures).map_err(Into::into)
    }

    /// Scores a single signature (a one-element [`RouterClient::screen`]).
    ///
    /// # Errors
    /// As for [`RouterClient::screen`].
    pub fn screen_one(&mut self, golden_key: u64, signature: &Signature) -> Result<ScoreResult> {
        Ok(self.screen(golden_key, std::slice::from_ref(signature))?[0])
    }

    /// Scores a batch where each signature names its own golden (`DSRM`) —
    /// the router splits it into per-backend sub-batches, forwards them
    /// concurrently and reassembles the scores in request order.
    ///
    /// # Errors
    /// An unknown fingerprint anywhere fails the whole batch. Unlike
    /// [`RouterClient::screen`] — where the requested key is known client-side
    /// and surfaces as [`crate::RouterError::UnknownGolden`] — a multi-batch
    /// error arrives as [`crate::RouterError::Serve`] wrapping the remote
    /// message, which names the offending fingerprint (the wire error body
    /// carries no key field). Transport failures as for
    /// [`RouterClient::screen`].
    pub fn screen_multi(&mut self, items: &[(u64, Signature)]) -> Result<Vec<ScoreResult>> {
        self.inner.screen_multi(items).map_err(Into::into)
    }

    /// Screens an adaptive-retest batch (`DSRT`) through the router, which
    /// forwards it to the golden's owning backend with failover; marginal
    /// devices are re-decided server-side from their averaged repeats.
    ///
    /// # Errors
    /// As for [`RouterClient::screen`].
    pub fn screen_retest(&mut self, request: &RetestRequest) -> Result<Vec<RetestScore>> {
        self.inner.screen_retest(request).map_err(Into::into)
    }

    /// Stores a golden on the router, which replicates it to the owning
    /// backends (`DSGP`).
    ///
    /// # Errors
    /// As for [`RouterClient::screen`].
    pub fn push_golden(&mut self, key: u64, band: AcceptanceBand, golden: &Signature) -> Result<()> {
        self.inner.push_golden(key, band, golden).map_err(Into::into)
    }

    /// Reads a golden record back through the router (`DSGF`), which resolves
    /// it from its store or from the owning backends.
    ///
    /// # Errors
    /// Returns [`crate::RouterError::UnknownGolden`] when nobody holds it.
    pub fn fetch_golden(&mut self, key: u64) -> Result<(AcceptanceBand, Signature)> {
        self.inner.fetch_golden(key).map_err(Into::into)
    }

    /// Scrapes the router's metrics (`DSMX`): per-backend forward/failover/
    /// retry counters, the backoff gauge, fan-out latency and the
    /// refresh-on-miss count.
    ///
    /// # Errors
    /// As for [`RouterClient::screen`] on transport or remote failures.
    pub fn metrics(&mut self) -> Result<MetricsSnapshot> {
        self.inner.metrics().map_err(Into::into)
    }

    /// Drains the router's buffered trace spans (`DSTX`): the routing spans
    /// recorded for sampled requests since the last scrape.
    ///
    /// # Errors
    /// As for [`RouterClient::screen`] on transport or remote failures.
    pub fn traces(&mut self) -> Result<TraceLog> {
        self.inner.traces().map_err(Into::into)
    }

    /// Scrapes the aggregated fleet metrics (`DSFM`): every backend's
    /// snapshot under `backend.<label>.`, the cross-backend rollup under
    /// `fleet.`, and the router's own registry unprefixed.
    ///
    /// # Errors
    /// As for [`RouterClient::screen`] on transport or remote failures.
    pub fn fleet_metrics(&mut self) -> Result<MetricsSnapshot> {
        self.inner.fleet_metrics().map_err(Into::into)
    }

    /// Drains the aggregated fleet traces (`DSFT`): every reachable
    /// backend's spans plus the router's own. Consuming and therefore not
    /// resubmitted on a dead connection.
    ///
    /// # Errors
    /// As for [`RouterClient::screen`] on transport or remote failures.
    pub fn fleet_traces(&mut self) -> Result<TraceLog> {
        self.inner.fleet_traces().map_err(Into::into)
    }

    /// Drains the router's buffered events (`DSEX`): backend
    /// backoff/recovery transitions, refresh-on-miss records. Consuming and
    /// therefore not resubmitted on a dead connection.
    ///
    /// # Errors
    /// As for [`RouterClient::screen`] on transport or remote failures.
    pub fn events(&mut self) -> Result<EventLog> {
        self.inner.events().map_err(Into::into)
    }

    /// Runs a fleet health check (`DSHC`): the router scrapes its backends
    /// and verdicts the rollup against its configured SLO policy. The
    /// report carries the live membership epoch.
    ///
    /// # Errors
    /// As for [`RouterClient::screen`] on transport or remote failures.
    pub fn health(&mut self) -> Result<HealthReport> {
        self.inner.health().map_err(Into::into)
    }

    /// Admits the backend at `label` (a dialable `host:port`, or an
    /// existing member's label to reactivate it) into the fleet (`DSAQ`
    /// join). The router migrates the goldens the newcomer owns onto it
    /// before it enters the rotation. Idempotent by label.
    ///
    /// # Errors
    /// Rejected labels surface as [`crate::RouterError::Serve`] wrapping
    /// the remote message; transport failures as for
    /// [`RouterClient::screen`].
    pub fn fleet_join(&mut self, label: &str) -> Result<FleetRoster> {
        self.inner.fleet_join(label).map_err(Into::into)
    }

    /// Removes the member at `label` from the fleet (`DSAQ` leave), after
    /// its goldens re-replicate to the survivors. Idempotent; the last
    /// member cannot leave.
    ///
    /// # Errors
    /// As for [`RouterClient::fleet_join`].
    pub fn fleet_leave(&mut self, label: &str) -> Result<FleetRoster> {
        self.inner.fleet_leave(label).map_err(Into::into)
    }

    /// Drains the member at `label` (`DSAQ` drain): new work steers away
    /// while it stays rostered as a failover last resort. Idempotent.
    ///
    /// # Errors
    /// As for [`RouterClient::fleet_join`].
    pub fn fleet_drain(&mut self, label: &str) -> Result<FleetRoster> {
        self.inner.fleet_drain(label).map_err(Into::into)
    }

    /// Reads the live roster (`DSAQ` list): membership epoch plus every
    /// member's label, id and state.
    ///
    /// # Errors
    /// As for [`RouterClient::fleet_join`].
    pub fn fleet_roster(&mut self) -> Result<FleetRoster> {
        self.inner.fleet_roster().map_err(Into::into)
    }
}

impl Screen for RouterClient {
    type Error = crate::RouterError;

    fn screen(&mut self, golden_key: u64, signatures: &[Signature]) -> Result<Vec<ScoreResult>> {
        RouterClient::screen(self, golden_key, signatures)
    }

    fn screen_one(&mut self, golden_key: u64, signature: &Signature) -> Result<ScoreResult> {
        RouterClient::screen_one(self, golden_key, signature)
    }

    fn screen_multi(&mut self, items: &[(u64, Signature)]) -> Result<Vec<ScoreResult>> {
        RouterClient::screen_multi(self, items)
    }

    fn screen_retest(&mut self, request: &RetestRequest) -> Result<Vec<RetestScore>> {
        RouterClient::screen_retest(self, request)
    }
}

impl ObsScrape for RouterClient {
    type Error = crate::RouterError;

    fn metrics(&mut self) -> Result<MetricsSnapshot> {
        RouterClient::metrics(self)
    }

    fn traces(&mut self) -> Result<TraceLog> {
        RouterClient::traces(self)
    }

    fn events(&mut self) -> Result<EventLog> {
        RouterClient::events(self)
    }

    fn fleet_metrics(&mut self) -> Result<MetricsSnapshot> {
        RouterClient::fleet_metrics(self)
    }

    fn fleet_traces(&mut self) -> Result<TraceLog> {
        RouterClient::fleet_traces(self)
    }

    fn health(&mut self) -> Result<HealthReport> {
        RouterClient::health(self)
    }
}

impl FleetAdmin for RouterClient {
    type Error = crate::RouterError;

    fn fleet_join(&mut self, label: &str) -> Result<FleetRoster> {
        RouterClient::fleet_join(self, label)
    }

    fn fleet_leave(&mut self, label: &str) -> Result<FleetRoster> {
        RouterClient::fleet_leave(self, label)
    }

    fn fleet_drain(&mut self, label: &str) -> Result<FleetRoster> {
        RouterClient::fleet_drain(self, label)
    }

    fn fleet_roster(&mut self) -> Result<FleetRoster> {
        RouterClient::fleet_roster(self)
    }
}

/// The multiplexed client of a routing tier: one connection, many requests
/// in flight, responses matched by the echoed request id. Cheap to clone;
/// all clones share the connection, so a whole test floor's worth of
/// threads fans in over one stream to the router.
///
/// Methods mirror [`RouterClient`] with `&self` receivers; the `start_*` /
/// `wait_*` pairs keep many requests in flight from a single thread.
pub struct PipelinedRouterClient {
    inner: PipelinedClient,
}

impl Clone for PipelinedRouterClient {
    fn clone(&self) -> Self {
        PipelinedRouterClient {
            inner: self.inner.clone(),
        }
    }
}

impl PipelinedRouterClient {
    /// Connects to a routing tier.
    ///
    /// # Errors
    /// Returns [`crate::RouterError::Serve`] on connection errors.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self> {
        Ok(PipelinedRouterClient {
            inner: PipelinedClient::connect(addr)?,
        })
    }

    /// The router address this client is connected to (and reconnects to).
    pub fn peer_addr(&self) -> SocketAddr {
        self.inner.peer_addr()
    }

    /// Starts a routed screening request; redeem with
    /// [`PipelinedRouterClient::wait_screen`].
    ///
    /// # Errors
    /// As for [`RouterClient::screen`].
    pub fn start_screen(&self, golden_key: u64, signatures: &[Signature]) -> Result<Ticket> {
        self.inner.start_screen(golden_key, signatures).map_err(Into::into)
    }

    /// Redeems a [`PipelinedRouterClient::start_screen`] ticket.
    ///
    /// # Errors
    /// As for [`RouterClient::screen`].
    pub fn wait_screen(&self, ticket: Ticket, expected: usize, golden_key: u64) -> Result<Vec<ScoreResult>> {
        self.inner.wait_screen(ticket, expected, golden_key).map_err(Into::into)
    }

    /// Starts a routed adaptive-retest request; redeem with
    /// [`PipelinedRouterClient::wait_retest`].
    ///
    /// # Errors
    /// As for [`RouterClient::screen_retest`].
    pub fn start_retest(&self, request: &RetestRequest) -> Result<Ticket> {
        self.inner.start_retest(request).map_err(Into::into)
    }

    /// Redeems a [`PipelinedRouterClient::start_retest`] ticket.
    ///
    /// # Errors
    /// As for [`RouterClient::screen_retest`].
    pub fn wait_retest(&self, ticket: Ticket, expected: usize, golden_key: u64) -> Result<Vec<RetestScore>> {
        self.inner.wait_retest(ticket, expected, golden_key).map_err(Into::into)
    }

    /// Scores a batch against one golden, routed — the pipelined
    /// [`RouterClient::screen`].
    ///
    /// # Errors
    /// As for [`RouterClient::screen`].
    pub fn screen(&self, golden_key: u64, signatures: &[Signature]) -> Result<Vec<ScoreResult>> {
        self.inner.screen(golden_key, signatures).map_err(Into::into)
    }

    /// Scores a single signature (a one-element
    /// [`PipelinedRouterClient::screen`]).
    ///
    /// # Errors
    /// As for [`RouterClient::screen`].
    pub fn screen_one(&self, golden_key: u64, signature: &Signature) -> Result<ScoreResult> {
        Ok(self.screen(golden_key, std::slice::from_ref(signature))?[0])
    }

    /// Scores a multi-golden batch (`DSRM`), routed — the pipelined
    /// [`RouterClient::screen_multi`].
    ///
    /// # Errors
    /// As for [`RouterClient::screen_multi`].
    pub fn screen_multi(&self, items: &[(u64, Signature)]) -> Result<Vec<ScoreResult>> {
        self.inner.screen_multi(items).map_err(Into::into)
    }

    /// Screens an adaptive-retest batch (`DSRT`), routed — the pipelined
    /// [`RouterClient::screen_retest`].
    ///
    /// # Errors
    /// As for [`RouterClient::screen_retest`].
    pub fn screen_retest(&self, request: &RetestRequest) -> Result<Vec<RetestScore>> {
        self.inner.screen_retest(request).map_err(Into::into)
    }

    /// Stores a golden on the router, which replicates it to the owning
    /// backends (`DSGP`).
    ///
    /// # Errors
    /// As for [`RouterClient::push_golden`].
    pub fn push_golden(&self, key: u64, band: AcceptanceBand, golden: &Signature) -> Result<()> {
        self.inner.push_golden(key, band, golden).map_err(Into::into)
    }

    /// Reads a golden record back through the router (`DSGF`).
    ///
    /// # Errors
    /// As for [`RouterClient::fetch_golden`].
    pub fn fetch_golden(&self, key: u64) -> Result<(AcceptanceBand, Signature)> {
        self.inner.fetch_golden(key).map_err(Into::into)
    }

    /// Scrapes the router's metrics (`DSMX`).
    ///
    /// # Errors
    /// As for [`RouterClient::metrics`].
    pub fn metrics(&self) -> Result<MetricsSnapshot> {
        self.inner.metrics().map_err(Into::into)
    }

    /// Drains the router's buffered trace spans (`DSTX`) — not resubmitted
    /// on a dead connection (a drain is not idempotent).
    ///
    /// # Errors
    /// As for [`RouterClient::traces`].
    pub fn traces(&self) -> Result<TraceLog> {
        self.inner.traces().map_err(Into::into)
    }

    /// Scrapes the aggregated fleet metrics (`DSFM`) — the pipelined
    /// [`RouterClient::fleet_metrics`].
    ///
    /// # Errors
    /// As for [`RouterClient::fleet_metrics`].
    pub fn fleet_metrics(&self) -> Result<MetricsSnapshot> {
        self.inner.fleet_metrics().map_err(Into::into)
    }

    /// Drains the aggregated fleet traces (`DSFT`) — not resubmitted on a
    /// dead connection (a drain is not idempotent).
    ///
    /// # Errors
    /// As for [`RouterClient::fleet_traces`].
    pub fn fleet_traces(&self) -> Result<TraceLog> {
        self.inner.fleet_traces().map_err(Into::into)
    }

    /// Drains the router's buffered events (`DSEX`) — not resubmitted on a
    /// dead connection (a drain is not idempotent).
    ///
    /// # Errors
    /// As for [`RouterClient::events`].
    pub fn events(&self) -> Result<EventLog> {
        self.inner.events().map_err(Into::into)
    }

    /// Runs a fleet health check (`DSHC`) — the pipelined
    /// [`RouterClient::health`].
    ///
    /// # Errors
    /// As for [`RouterClient::health`].
    pub fn health(&self) -> Result<HealthReport> {
        self.inner.health().map_err(Into::into)
    }

    /// Admits the backend at `label` into the fleet (`DSAQ` join) — the
    /// pipelined [`RouterClient::fleet_join`]. Idempotent by label and
    /// therefore resubmit-safe under the mux's transparent reconnect.
    ///
    /// # Errors
    /// As for [`RouterClient::fleet_join`].
    pub fn fleet_join(&self, label: &str) -> Result<FleetRoster> {
        self.inner.fleet_join(label).map_err(Into::into)
    }

    /// Removes the member at `label` (`DSAQ` leave) — the pipelined
    /// [`RouterClient::fleet_leave`].
    ///
    /// # Errors
    /// As for [`RouterClient::fleet_join`].
    pub fn fleet_leave(&self, label: &str) -> Result<FleetRoster> {
        self.inner.fleet_leave(label).map_err(Into::into)
    }

    /// Drains the member at `label` (`DSAQ` drain) — the pipelined
    /// [`RouterClient::fleet_drain`].
    ///
    /// # Errors
    /// As for [`RouterClient::fleet_join`].
    pub fn fleet_drain(&self, label: &str) -> Result<FleetRoster> {
        self.inner.fleet_drain(label).map_err(Into::into)
    }

    /// Reads the live roster (`DSAQ` list) — the pipelined
    /// [`RouterClient::fleet_roster`].
    ///
    /// # Errors
    /// As for [`RouterClient::fleet_join`].
    pub fn fleet_roster(&self) -> Result<FleetRoster> {
        self.inner.fleet_roster().map_err(Into::into)
    }
}

impl Screen for PipelinedRouterClient {
    type Error = crate::RouterError;

    fn screen(&mut self, golden_key: u64, signatures: &[Signature]) -> Result<Vec<ScoreResult>> {
        PipelinedRouterClient::screen(self, golden_key, signatures)
    }

    fn screen_one(&mut self, golden_key: u64, signature: &Signature) -> Result<ScoreResult> {
        PipelinedRouterClient::screen_one(self, golden_key, signature)
    }

    fn screen_multi(&mut self, items: &[(u64, Signature)]) -> Result<Vec<ScoreResult>> {
        PipelinedRouterClient::screen_multi(self, items)
    }

    fn screen_retest(&mut self, request: &RetestRequest) -> Result<Vec<RetestScore>> {
        PipelinedRouterClient::screen_retest(self, request)
    }
}

impl ObsScrape for PipelinedRouterClient {
    type Error = crate::RouterError;

    fn metrics(&mut self) -> Result<MetricsSnapshot> {
        PipelinedRouterClient::metrics(self)
    }

    fn traces(&mut self) -> Result<TraceLog> {
        PipelinedRouterClient::traces(self)
    }

    fn events(&mut self) -> Result<EventLog> {
        PipelinedRouterClient::events(self)
    }

    fn fleet_metrics(&mut self) -> Result<MetricsSnapshot> {
        PipelinedRouterClient::fleet_metrics(self)
    }

    fn fleet_traces(&mut self) -> Result<TraceLog> {
        PipelinedRouterClient::fleet_traces(self)
    }

    fn health(&mut self) -> Result<HealthReport> {
        PipelinedRouterClient::health(self)
    }
}

impl FleetAdmin for PipelinedRouterClient {
    type Error = crate::RouterError;

    fn fleet_join(&mut self, label: &str) -> Result<FleetRoster> {
        PipelinedRouterClient::fleet_join(self, label)
    }

    fn fleet_leave(&mut self, label: &str) -> Result<FleetRoster> {
        PipelinedRouterClient::fleet_leave(self, label)
    }

    fn fleet_drain(&mut self, label: &str) -> Result<FleetRoster> {
        PipelinedRouterClient::fleet_drain(self, label)
    }

    fn fleet_roster(&mut self) -> Result<FleetRoster> {
        PipelinedRouterClient::fleet_roster(self)
    }
}

impl dsig_engine::RemoteScorer for PipelinedRouterClient {
    fn screen_remote(
        &self,
        golden_key: u64,
        signatures: &[Signature],
    ) -> dsig_core::Result<Vec<dsig_engine::RemoteScore>> {
        dsig_engine::RemoteScorer::screen_remote(&self.inner, golden_key, signatures)
    }

    fn retest_remote(
        &self,
        golden_key: u64,
        policy: &dsig_core::RetestPolicy,
        devices: &[dsig_engine::RetestDevice],
    ) -> dsig_core::Result<Vec<dsig_engine::RemoteRetest>> {
        dsig_engine::RemoteScorer::retest_remote(&self.inner, golden_key, policy, devices)
    }
}
