//! A scoring backend as the router sees it: a transport (TCP `dsig-serve`
//! process or in-process [`ServeHandle`]), a stable rendezvous identity and
//! a health record with exponential backoff.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use dsig_core::{AcceptanceBand, Signature};
use dsig_obs::{EventLog, MetricsSnapshot, TraceLog};
use dsig_serve::{GoldenRecord, PipelinedClient, RetestRequest, RetestScore, ScoreResult, ServeError, ServeHandle};

/// Backoff policy of the per-backend health record: the `n`-th consecutive
/// failure marks the backend down for `base_backoff * 2^(n-1)`, capped at
/// `max_backoff`. A marked-down backend is deprioritized, never abandoned —
/// requests fall back to it when every ranked-higher backend also fails, and
/// any success clears the record.
#[derive(Debug, Clone, Copy)]
pub struct HealthConfig {
    /// Backoff after the first consecutive failure.
    pub base_backoff: Duration,
    /// Upper bound on the backoff, however many failures accumulate.
    pub max_backoff: Duration,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            base_backoff: Duration::from_millis(250),
            max_backoff: Duration::from_secs(5),
        }
    }
}

impl HealthConfig {
    /// The backoff applied after `consecutive_failures` failures.
    fn backoff(&self, consecutive_failures: u32) -> Duration {
        let doublings = consecutive_failures.saturating_sub(1).min(16);
        self.max_backoff.min(self.base_backoff.saturating_mul(1 << doublings))
    }
}

/// Mutable health state of one backend.
#[derive(Debug, Default)]
struct Health {
    consecutive_failures: u32,
    down_until: Option<Instant>,
    /// Set once per failure streak when the backoff saturates at the
    /// configured cap — the latch behind once-per-death replica healing.
    heal_armed: bool,
}

/// How the router reaches a backend.
enum Transport {
    /// A `dsig-serve` process reached over **one multiplexed connection**:
    /// every concurrently forwarding router thread pipelines onto the same
    /// [`PipelinedClient`], so the fan-in from thousands of downstream
    /// testers rides a single upstream stream per backend. The slot is
    /// `None` until first use and after a transport failure (the next
    /// operation redials).
    Tcp {
        addr: SocketAddr,
        mux: Mutex<Option<PipelinedClient>>,
    },
    /// An in-process shard set (spawned via [`ServeHandle::spawn`]) — the
    /// no-TCP path tests and single-process deployments use. The `killed`
    /// flag simulates a dead process: once set, every operation fails like a
    /// torn-down connection would.
    Local { handle: ServeHandle, killed: AtomicBool },
}

/// One backend of a router: transport + identity + health.
pub struct Backend {
    id: u64,
    label: String,
    transport: Transport,
    health: Mutex<Health>,
}

impl std::fmt::Debug for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Backend")
            .field("id", &self.id)
            .field("label", &self.label)
            .finish_non_exhaustive()
    }
}

impl Backend {
    /// A TCP backend addressing a `dsig-serve` process. The rendezvous id is
    /// a hash of the address, so every router instance fronting the same
    /// backend set ranks keys identically.
    pub fn tcp(addr: SocketAddr) -> Backend {
        let label = addr.to_string();
        let id = label.bytes().fold(0xcbf2_9ce4_8422_2325u64, |hash, byte| {
            (hash ^ u64::from(byte)).wrapping_mul(0x1000_0000_01b3)
        });
        Backend {
            id,
            label,
            transport: Transport::Tcp {
                addr,
                mux: Mutex::new(None),
            },
            health: Mutex::new(Health::default()),
        }
    }

    /// An in-process backend over an already spawned shard set, with an
    /// explicit rendezvous id (in-process routers number their backends
    /// `0, 1, 2, …`).
    pub fn local(id: u64, handle: ServeHandle) -> Backend {
        Backend {
            id,
            label: format!("local-{id}"),
            transport: Transport::Local {
                handle,
                killed: AtomicBool::new(false),
            },
            health: Mutex::new(Health::default()),
        }
    }

    /// The stable rendezvous identity of this backend.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// A human-readable name (the address for TCP backends).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Simulates (or forces) a dead backend: every subsequent operation on an
    /// in-process backend fails as a torn-down connection would. TCP
    /// backends drop their multiplexed connection; whether later operations
    /// fail depends on whether the remote process is actually gone.
    pub fn kill(&self) {
        match &self.transport {
            Transport::Local { killed, .. } => killed.store(true, Ordering::SeqCst),
            Transport::Tcp { mux, .. } => *mux.lock().expect("backend mux lock poisoned") = None,
        }
    }

    /// Undoes a [`Backend::kill`]: in-process backends accept operations
    /// again, and the health record is cleared so the next forward reaches
    /// the backend without waiting out a backoff window. TCP backends only
    /// clear their record — whether operations succeed depends on the remote
    /// process being back. Returns `true` when this ended a failure streak.
    pub fn revive(&self) -> bool {
        if let Transport::Local { killed, .. } = &self.transport {
            killed.store(false, Ordering::SeqCst);
        }
        self.note_success()
    }

    /// Whether the backend's health record currently marks it down.
    pub fn is_down(&self) -> bool {
        !self.is_available(Instant::now())
    }

    /// Whether the backend is outside any failure backoff window at `now`.
    pub(crate) fn is_available(&self, now: Instant) -> bool {
        match self.health.lock().expect("backend health lock poisoned").down_until {
            Some(until) => now >= until,
            None => true,
        }
    }

    /// Clears the failure record after a successful operation. Returns
    /// `true` when this ended a failure streak — the backed-off → recovered
    /// transition the router logs an event for.
    pub(crate) fn note_success(&self) -> bool {
        let mut health = self.health.lock().expect("backend health lock poisoned");
        let recovered = health.consecutive_failures > 0;
        health.consecutive_failures = 0;
        health.down_until = None;
        health.heal_armed = false;
        recovered
    }

    /// The replica-healing latch: returns `true` exactly once per failure
    /// streak, the first time the streak's backoff has saturated at
    /// [`HealthConfig::max_backoff`] — i.e. the backend has stayed dead past
    /// every doubling and is now presumed gone for good. Any success (or a
    /// [`Backend::revive`]) disarms the latch, so a backend that comes back
    /// and dies again heals again.
    pub(crate) fn arm_heal(&self, config: &HealthConfig) -> bool {
        let mut health = self.health.lock().expect("backend health lock poisoned");
        if health.heal_armed
            || health.consecutive_failures == 0
            || config.backoff(health.consecutive_failures) < config.max_backoff
        {
            return false;
        }
        health.heal_armed = true;
        true
    }

    /// Records a failed operation and arms the exponential backoff. Returns
    /// `true` when this started a failure streak (the backend just went from
    /// healthy to backed-off).
    pub(crate) fn note_failure(&self, now: Instant, config: &HealthConfig) -> bool {
        let mut health = self.health.lock().expect("backend health lock poisoned");
        health.consecutive_failures = health.consecutive_failures.saturating_add(1);
        health.down_until = Some(now + config.backoff(health.consecutive_failures));
        health.consecutive_failures == 1
    }

    /// Clones the backend's shared multiplexed connection, dialing it on
    /// first use (or after a transport failure cleared it).
    fn client(addr: SocketAddr, mux: &Mutex<Option<PipelinedClient>>) -> Result<PipelinedClient, ServeError> {
        let mut slot = mux.lock().expect("backend mux lock poisoned");
        if let Some(client) = &*slot {
            return Ok(client.clone());
        }
        let client = PipelinedClient::connect(addr)?;
        *slot = Some(client.clone());
        Ok(client)
    }

    /// Clears the shared connection after a transport failure (remote-side
    /// errors keep it: the stream itself is fine). The pipelined client
    /// already retried once internally, so a transport error here means the
    /// backend is genuinely unreachable right now.
    fn settle<T>(mux: &Mutex<Option<PipelinedClient>>, result: Result<T, ServeError>) -> Result<T, ServeError> {
        match &result {
            Ok(_) | Err(ServeError::UnknownGolden(_) | ServeError::Remote(_)) => {}
            Err(_) => *mux.lock().expect("backend mux lock poisoned") = None,
        }
        result
    }

    /// Scores a batch against this backend.
    pub(crate) fn screen(&self, key: u64, signatures: &[Signature]) -> Result<Vec<ScoreResult>, ServeError> {
        match &self.transport {
            Transport::Tcp { addr, mux } => {
                let client = Self::client(*addr, mux)?;
                Self::settle(mux, client.screen(key, signatures))
            }
            Transport::Local { handle, killed } => {
                if killed.load(Ordering::SeqCst) {
                    return Err(ServeError::Closed);
                }
                handle.screen(key, signatures)
            }
        }
    }

    /// Screens an adaptive-retest batch against this backend (`DSRT`).
    pub(crate) fn retest(&self, request: &RetestRequest) -> Result<Vec<RetestScore>, ServeError> {
        match &self.transport {
            Transport::Tcp { addr, mux } => {
                let client = Self::client(*addr, mux)?;
                Self::settle(mux, client.screen_retest(request))
            }
            Transport::Local { handle, killed } => {
                if killed.load(Ordering::SeqCst) {
                    return Err(ServeError::Closed);
                }
                handle.screen_retest(request)
            }
        }
    }

    /// Pushes a golden record to this backend (replication).
    pub(crate) fn push(&self, key: u64, record: &GoldenRecord) -> Result<(), ServeError> {
        match &self.transport {
            Transport::Tcp { addr, mux } => {
                let client = Self::client(*addr, mux)?;
                Self::settle(mux, client.push_golden(key, record.band, &record.golden))
            }
            Transport::Local { handle, killed } => {
                if killed.load(Ordering::SeqCst) {
                    return Err(ServeError::Closed);
                }
                handle.push_golden(key, record.golden.clone(), record.band);
                Ok(())
            }
        }
    }

    /// Scrapes this backend's own metrics snapshot (`DSMX`) — one leg of the
    /// router's fleet-metrics fan-out.
    pub(crate) fn metrics(&self) -> Result<MetricsSnapshot, ServeError> {
        match &self.transport {
            Transport::Tcp { addr, mux } => {
                let client = Self::client(*addr, mux)?;
                Self::settle(mux, client.metrics())
            }
            Transport::Local { handle, killed } => {
                if killed.load(Ordering::SeqCst) {
                    return Err(ServeError::Closed);
                }
                Ok(handle.metrics())
            }
        }
    }

    /// Drains this backend's buffered trace spans (`DSTX`) — one leg of the
    /// router's fleet-trace fan-out. A drain is consuming: spans move to the
    /// caller and are gone from the backend.
    pub(crate) fn traces(&self) -> Result<TraceLog, ServeError> {
        match &self.transport {
            Transport::Tcp { addr, mux } => {
                let client = Self::client(*addr, mux)?;
                Self::settle(mux, client.traces())
            }
            Transport::Local { handle, killed } => {
                if killed.load(Ordering::SeqCst) {
                    return Err(ServeError::Closed);
                }
                Ok(handle.traces())
            }
        }
    }

    /// Drains this backend's buffered events (`DSEX`). Consuming, like
    /// [`Backend::traces`].
    pub(crate) fn events(&self) -> Result<EventLog, ServeError> {
        match &self.transport {
            Transport::Tcp { addr, mux } => {
                let client = Self::client(*addr, mux)?;
                Self::settle(mux, client.events())
            }
            Transport::Local { handle, killed } => {
                if killed.load(Ordering::SeqCst) {
                    return Err(ServeError::Closed);
                }
                Ok(handle.events())
            }
        }
    }

    /// Reads a golden record back from this backend.
    pub(crate) fn fetch(&self, key: u64) -> Result<(AcceptanceBand, Signature), ServeError> {
        match &self.transport {
            Transport::Tcp { addr, mux } => {
                let client = Self::client(*addr, mux)?;
                Self::settle(mux, client.fetch_golden(key))
            }
            Transport::Local { handle, killed } => {
                if killed.load(Ordering::SeqCst) {
                    return Err(ServeError::Closed);
                }
                let record = handle.fetch_golden(key)?;
                Ok((record.band, record.golden.clone()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use dsig_core::{SignatureEntry, ZoneCode};
    use dsig_serve::{GoldenStore, ServeConfig};

    fn sig(codes: &[(u32, f64)]) -> Signature {
        Signature::new(
            codes
                .iter()
                .map(|&(c, d)| SignatureEntry {
                    code: ZoneCode(c),
                    duration: d,
                })
                .collect(),
        )
        .unwrap()
    }

    fn local_backend(id: u64) -> Backend {
        Backend::local(
            id,
            ServeHandle::spawn(Arc::new(GoldenStore::new()), ServeConfig::with_shards(1)),
        )
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let config = HealthConfig {
            base_backoff: Duration::from_millis(100),
            max_backoff: Duration::from_millis(450),
        };
        assert_eq!(config.backoff(1), Duration::from_millis(100));
        assert_eq!(config.backoff(2), Duration::from_millis(200));
        assert_eq!(config.backoff(3), Duration::from_millis(400));
        assert_eq!(config.backoff(4), Duration::from_millis(450), "capped");
        assert_eq!(config.backoff(40), Duration::from_millis(450), "shift-safe");
    }

    #[test]
    fn health_marks_down_and_recovers_on_success() {
        let backend = local_backend(0);
        let config = HealthConfig::default();
        let now = Instant::now();
        assert!(backend.is_available(now));
        assert!(backend.note_failure(now, &config), "first failure starts a streak");
        assert!(!backend.is_available(now));
        assert!(backend.is_down());
        // ...but availability returns once the backoff elapses...
        assert!(backend.is_available(now + config.base_backoff));
        // ...and a success clears the record instantly.
        assert!(
            !backend.note_failure(now, &config),
            "a running streak is not a transition"
        );
        assert!(backend.note_success(), "clearing a streak is the recovery transition");
        assert!(backend.is_available(now));
        assert!(!backend.is_down());
        assert!(
            !backend.note_success(),
            "a success with a clean record is not a transition"
        );
    }

    #[test]
    fn heal_latch_arms_once_at_backoff_saturation_and_rearms_after_recovery() {
        let backend = local_backend(1);
        let config = HealthConfig {
            base_backoff: Duration::from_millis(100),
            max_backoff: Duration::from_millis(400),
        };
        let now = Instant::now();
        backend.note_failure(now, &config);
        assert!(!backend.arm_heal(&config), "one failure is a blip, not a death");
        backend.note_failure(now, &config);
        assert!(!backend.arm_heal(&config), "still doubling");
        backend.note_failure(now, &config);
        assert!(backend.arm_heal(&config), "backoff saturated: heal once");
        backend.note_failure(now, &config);
        assert!(!backend.arm_heal(&config), "the latch holds for the rest of the streak");
        backend.note_success();
        assert!(!backend.arm_heal(&config), "a healthy backend never heals");
        for _ in 0..3 {
            backend.note_failure(now, &config);
        }
        assert!(backend.arm_heal(&config), "a second death heals again");
    }

    #[test]
    fn revive_undoes_a_kill_and_clears_the_health_record() {
        let backend = local_backend(7);
        let band = AcceptanceBand::new(0.05).unwrap();
        let golden = sig(&[(1, 100e-6)]);
        backend
            .push(
                4,
                &GoldenRecord {
                    golden: golden.clone(),
                    band,
                },
            )
            .unwrap();
        backend.kill();
        backend.note_failure(Instant::now(), &HealthConfig::default());
        assert!(matches!(backend.metrics(), Err(ServeError::Closed)));
        assert!(matches!(backend.events(), Err(ServeError::Closed)));
        assert!(matches!(backend.traces(), Err(ServeError::Closed)));
        assert!(backend.is_down());
        backend.revive();
        assert!(!backend.is_down(), "revive clears the backoff immediately");
        assert_eq!(backend.screen(4, std::slice::from_ref(&golden)).unwrap()[0].ndf, 0.0);
        assert!(backend.metrics().is_ok());
    }

    #[test]
    fn killed_local_backend_fails_like_a_dead_process() {
        let backend = local_backend(3);
        let band = AcceptanceBand::new(0.05).unwrap();
        let golden = sig(&[(1, 100e-6)]);
        backend
            .push(
                9,
                &GoldenRecord {
                    golden: golden.clone(),
                    band,
                },
            )
            .unwrap();
        assert_eq!(backend.fetch(9).unwrap().1, golden);
        assert_eq!(backend.screen(9, std::slice::from_ref(&golden)).unwrap()[0].ndf, 0.0);
        backend.kill();
        assert!(matches!(
            backend.screen(9, std::slice::from_ref(&golden)),
            Err(ServeError::Closed)
        ));
        assert!(matches!(
            backend.push(9, &GoldenRecord { golden, band }),
            Err(ServeError::Closed)
        ));
        assert!(matches!(backend.fetch(9), Err(ServeError::Closed)));
    }

    #[test]
    fn tcp_ids_hash_the_address_and_local_ids_are_explicit() {
        let a = Backend::tcp("127.0.0.1:7001".parse().unwrap());
        let b = Backend::tcp("127.0.0.1:7002".parse().unwrap());
        assert_ne!(a.id(), b.id());
        assert_eq!(a.id(), Backend::tcp("127.0.0.1:7001".parse().unwrap()).id());
        assert_eq!(a.label(), "127.0.0.1:7001");
        assert_eq!(local_backend(5).id(), 5);
        assert!(format!("{:?}", local_backend(5)).contains("local-5"));
    }
}
