//! # dsig-router
//!
//! The multi-backend routing tier of the signature-scoring service: a
//! coordinator that fronts N [`dsig_serve`] backends and turns the
//! single-process serving layer into a horizontally sharded one.
//!
//! A production test floor screens whole lots against golden signatures; one
//! scoring process eventually saturates. The router shards that workload by
//! **golden fingerprint** ([`dsig_engine::golden_fingerprint`]): rendezvous
//! (HRW) hashing assigns every fingerprint an owner backend and a
//! deterministic replica chain, batch requests split into per-backend
//! sub-batches forwarded concurrently over the existing `DSRQ`/`DSRS`
//! protocol, and responses reassemble in request order. Because signature
//! scoring is a pure function of `(golden, observed, band)`, routed results
//! are **bit-identical** to direct [`dsig_core::TestFlow`] scoring at every
//! backend count, every split boundary and under failover — the loopback
//! tests enforce this over a 1000-device lot with a killed backend.
//!
//! The crate provides:
//!
//! * [`Router`] — the TCP front: accept loop, request dispatch by magic,
//!   fan-out over the fleet;
//! * [`RouterHandle`] — the in-process front (no TCP): same core, plus
//!   [`RouterHandle::spawn`] which builds a whole in-process backend fleet
//!   via [`dsig_serve::ServeHandle::spawn`] for tests and benches;
//! * [`RouterClient`] — the blocking TCP client (single- and multi-golden
//!   screening, golden push/readback);
//! * [`RouterStore`] — the router's authoritative golden store
//!   (`DSGS`-compatible): characterize once, **push** to the owning
//!   backends, **refresh** a failover backend on miss, **read back** from
//!   backends after a router restart;
//! * [`Backend`] / [`HealthConfig`] — the backend fleet: TCP or in-process
//!   transports, stable rendezvous ids, exponential-backoff health records
//!   with deterministic failover (the replica chain *is* the HRW ranking);
//! * [`RouterConfig`] — replication factor, sub-batch boundary, health
//!   policy.
//!
//! # Elastic fleet
//!
//! Membership is **live**: the `DSAQ` admin family (join, leave, drain,
//! list — see `docs/FORMATS.md`) mutates an epoch-versioned membership
//! snapshot under the event loop. A joining backend has the goldens it now
//! owns migrated onto it *before* it enters the rotation; a leaving or
//! draining member has its replicas re-homed to the survivors first; a
//! member that stays dead past its backoff cap triggers once-per-death
//! **replica healing**. Backends are addressed by **label** (`host:port`
//! or `local-<id>`); membership transitions surface as `backend.joined` /
//! `backend.left` / `backend.draining` / `replica.healed` events and the
//! epoch rides in every `DSHR` health report. All six client/handle types
//! program against the shared [`dsig_serve::Screen`],
//! [`dsig_serve::ObsScrape`] and [`dsig_serve::FleetAdmin`] traits.
//!
//! The router implements [`dsig_engine::RemoteScorer`], so a
//! [`dsig_engine::CampaignRunner`] can score an entire campaign through the
//! routing tier (`ScoreTarget::Remote`) — multi-process campaign sharding
//! with reports bit-identical to local scoring.
//!
//! # Wire format
//!
//! The router speaks the serving protocol unchanged: `DSRQ`/`DSRS` for
//! single-golden screening (forwarded verbatim to backends), plus the
//! `DSRM` multi-golden request, the `DSGP`/`DSGF`/`DSRA` replication
//! frames and the `DSMX`/`DSMR` metrics scrape (answering with the routing
//! tier's own counters — per-backend forwards/failovers/retries, backoff
//! gauge, fan-out latency, refresh-on-miss), all specified in
//! `docs/FORMATS.md`.
//!
//! # Example
//!
//! See [`RouterClient`] for the end-to-end loopback example, and
//! `examples/router.rs` for a multi-backend fleet with a killed backend.

#![warn(missing_docs)]

pub mod backend;
pub mod client;
pub mod error;
pub mod handle;
pub mod hash;
pub mod router;
pub mod server;
pub mod store;

pub use backend::{Backend, HealthConfig};
pub use client::{PipelinedRouterClient, RouterClient};
pub use error::{Result, RouterError};
pub use handle::RouterHandle;
pub use hash::{hrw_weight, mix64, rank_backends};
pub use router::RouterConfig;
pub use server::Router;
pub use store::RouterStore;
