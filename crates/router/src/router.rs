//! The routing core: rendezvous ranking, per-backend sub-batch splitting,
//! golden replication/refresh/readback, health-aware deterministic
//! failover, and **live membership** — join/leave/drain with golden
//! migration, epoch-versioned so every observer can tell which fleet shape
//! answered. Shared by the in-process [`crate::RouterHandle`] and the TCP
//! [`crate::Router`] front.

use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

use cut_filters::BiquadParams;
use dsig_core::{AcceptanceBand, DsigError, Signature, TestSetup};
use dsig_obs::trace::{self, Tracer};
use dsig_obs::{
    Counter, EventLevel, EventLog, Gauge, HealthReport, Histogram, MetricsSnapshot, Registry, SloPolicy, Span, TraceLog,
};
use dsig_serve::server::{group_by_fingerprint, health_sample};
use dsig_serve::{
    AdminRequest, BackendState, FleetRoster, GoldenRecord, RetestRequest, RetestScore, RosterEntry, ScoreResult,
    ServeError,
};

use crate::backend::{Backend, HealthConfig};
use crate::error::{Result, RouterError};
use crate::hash::rank_backends;
use crate::store::RouterStore;

/// Tuning knobs of a router.
#[derive(Debug, Clone, Copy)]
pub struct RouterConfig {
    /// Copies of each golden pushed across the rendezvous ranking (the owner
    /// plus `replicas - 1` followers). At least one; more copies let a
    /// failover backend answer without a mid-request refresh.
    pub replicas: usize,
    /// Maximum signatures per forwarded screening sub-batch. Large client
    /// batches are split at this boundary; results are bit-identical at
    /// every boundary because scoring is per-signature pure.
    pub sub_batch: usize,
    /// Health/backoff policy of the backend set.
    pub health: HealthConfig,
    /// SLO thresholds the `DSHC` health check verdicts the fleet against.
    pub slo: SloPolicy,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            replicas: 2,
            sub_batch: 256,
            health: HealthConfig::default(),
            slo: SloPolicy::default(),
        }
    }
}

/// The routing tier's fleet-wide metric handles, resolved once per core so
/// the forwarding hot path never touches the registry lock.
struct RouterMetrics {
    /// `router.backoff_backends` — ranked backends in failure backoff at the
    /// last forward (a state gauge, refreshed per forwarded operation).
    backoff: Arc<Gauge>,
    /// `router.fanout_us` — latency of one forwarded sub-batch, failover
    /// walk included.
    fanout_us: Arc<Histogram>,
    /// `router.refresh_on_miss` — goldens re-pushed to a backend that
    /// answered "unknown golden" mid-request.
    refresh_on_miss: Arc<Counter>,
    /// `router.membership_epoch` — the live epoch, mirrored as a gauge so a
    /// plain metrics scrape shows membership churn.
    epoch: Arc<Gauge>,
}

/// Per-backend forward/failover/retry counters, embedded in the member
/// entry so they travel with the backend through membership changes.
/// Cloning shares the counters (they are registry handles).
#[derive(Clone)]
struct BackendMetrics {
    /// `router.backend.<label>.forwards` — operations this backend answered.
    forwards: Arc<Counter>,
    /// `router.backend.<label>.failovers` — operations this backend answered
    /// after at least one higher-ranked backend was skipped or had failed.
    failovers: Arc<Counter>,
    /// `router.backend.<label>.retries` — failed attempts against this
    /// backend that sent the operation onward down the chain.
    retries: Arc<Counter>,
}

impl BackendMetrics {
    fn new(registry: &Registry, label: &str) -> BackendMetrics {
        let name = |what: &str| format!("router.backend.{label}.{what}");
        BackendMetrics {
            forwards: registry.counter(&name("forwards")),
            failovers: registry.counter(&name("failovers")),
            retries: registry.counter(&name("retries")),
        }
    }
}

/// One member of the live fleet: the backend, its counters and its drain
/// flag. Entries are cheap to clone (everything shared), which is what
/// makes each membership snapshot an immutable value.
#[derive(Clone)]
struct MemberEntry {
    backend: Arc<Backend>,
    metrics: BackendMetrics,
    /// A draining member stays ranked (last resort under failover) but is
    /// excluded from the preferred partition, so new work steers away.
    draining: bool,
}

/// An immutable snapshot of the fleet at one epoch. Every routed operation
/// takes one `Arc<Membership>` snapshot up front and works entirely within
/// it — indices are snapshot-relative, so a concurrent join/leave can never
/// shift a backend out from under a forward in flight.
struct Membership {
    /// Bumped on every join/leave/drain; starts at 1. Surfaced in `DSHR`
    /// health reports, the `DSAQ` roster and the `router.membership_epoch`
    /// gauge.
    epoch: u64,
    entries: Vec<MemberEntry>,
}

impl Membership {
    /// Member indices in rendezvous order for a fingerprint: owner first.
    /// Draining members still rank — exclusion from new work happens in the
    /// forward partition, not here, so the ranking (and therefore replica
    /// placement) stays a pure function of the member ids.
    fn rank(&self, key: u64) -> Vec<usize> {
        let ids: Vec<u64> = self.entries.iter().map(|entry| entry.backend.id()).collect();
        rank_backends(key, &ids)
    }

    fn index_of(&self, label: &str) -> Option<usize> {
        self.entries.iter().position(|entry| entry.backend.label() == label)
    }
}

/// The routing state shared by every front (TCP listener, in-process
/// handles): the live membership, the authoritative golden store and the
/// config.
pub(crate) struct RouterCore {
    /// The live fleet. Reads are one `Arc` clone under a read lock; writes
    /// (join/leave/drain) install a whole new snapshot with a bumped epoch.
    membership: RwLock<Arc<Membership>>,
    /// Serializes membership changes end to end (snapshot → migrate →
    /// install), so two concurrent joins cannot interleave their golden
    /// migrations or lose each other's epoch bump.
    admin: Mutex<()>,
    store: RouterStore,
    config: RouterConfig,
    registry: Registry,
    tracer: Tracer,
    metrics: RouterMetrics,
}

impl RouterCore {
    /// Builds a core over a non-empty backend set with unique rendezvous
    /// ids, registering its metrics in the process-wide [`Registry::global`].
    pub(crate) fn new(backends: Vec<Backend>, store: RouterStore, config: RouterConfig) -> Result<Self> {
        Self::new_in(backends, store, config, Registry::global())
    }

    /// Like [`RouterCore::new`] with an explicit metrics registry.
    pub(crate) fn new_in(
        backends: Vec<Backend>,
        store: RouterStore,
        config: RouterConfig,
        registry: Registry,
    ) -> Result<Self> {
        if backends.is_empty() {
            return Err(RouterError::NoBackends);
        }
        let mut ids: Vec<u64> = backends.iter().map(Backend::id).collect();
        ids.sort_unstable();
        if ids.windows(2).any(|pair| pair[0] == pair[1]) {
            return Err(RouterError::Dsig(DsigError::InvalidConfig(
                "router backends must have unique rendezvous ids".into(),
            )));
        }
        let entries: Vec<MemberEntry> = backends
            .into_iter()
            .map(|backend| MemberEntry {
                metrics: BackendMetrics::new(&registry, backend.label()),
                backend: Arc::new(backend),
                draining: false,
            })
            .collect();
        let metrics = RouterMetrics {
            backoff: registry.gauge("router.backoff_backends"),
            fanout_us: registry.histogram("router.fanout_us"),
            refresh_on_miss: registry.counter("router.refresh_on_miss"),
            epoch: registry.gauge("router.membership_epoch"),
        };
        metrics.epoch.set(1.0);
        let tracer = registry.tracer().clone();
        Ok(RouterCore {
            membership: RwLock::new(Arc::new(Membership { epoch: 1, entries })),
            admin: Mutex::new(()),
            store,
            config,
            registry,
            tracer,
            metrics,
        })
    }

    pub(crate) fn store(&self) -> &RouterStore {
        &self.store
    }

    /// One consistent view of the fleet: the snapshot every operation works
    /// within.
    fn snapshot(&self) -> Arc<Membership> {
        Arc::clone(&self.membership.read().expect("membership lock poisoned"))
    }

    /// The live membership epoch.
    pub(crate) fn epoch(&self) -> u64 {
        self.snapshot().epoch
    }

    /// Number of members (active, draining or backed off) in the live fleet.
    pub(crate) fn backend_count(&self) -> usize {
        self.snapshot().entries.len()
    }

    /// Member labels in membership order.
    pub(crate) fn backend_labels(&self) -> Vec<String> {
        self.snapshot()
            .entries
            .iter()
            .map(|entry| entry.backend.label().to_string())
            .collect()
    }

    /// Member labels in rendezvous order for a fingerprint: owner first,
    /// then its replicas.
    pub(crate) fn rank_labels(&self, key: u64) -> Vec<String> {
        let m = self.snapshot();
        m.rank(key)
            .into_iter()
            .map(|i| m.entries[i].backend.label().to_string())
            .collect()
    }

    /// Member indices (within the *current* snapshot) in rendezvous order.
    /// Indices go stale the moment membership changes — label addressing is
    /// the stable vocabulary.
    pub(crate) fn rank(&self, key: u64) -> Vec<usize> {
        self.snapshot().rank(key)
    }

    /// Resolves a member by label.
    fn find(&self, label: &str) -> Result<Arc<Backend>> {
        let m = self.snapshot();
        m.index_of(label)
            .map(|i| Arc::clone(&m.entries[i].backend))
            .ok_or_else(|| RouterError::Dsig(DsigError::InvalidConfig(format!("unknown backend {label:?}"))))
    }

    /// Kills the member at `label` (see [`Backend::kill`]).
    pub(crate) fn kill_by_label(&self, label: &str) -> Result<()> {
        self.find(label)?.kill();
        Ok(())
    }

    /// Whether the member at `label` is currently marked down.
    pub(crate) fn down_by_label(&self, label: &str) -> Result<bool> {
        Ok(self.find(label)?.is_down())
    }

    /// Revives the member at `label` (see [`Backend::revive`]), logging the
    /// recovery event when this ended a failure streak.
    pub(crate) fn revive_by_label(&self, label: &str) -> Result<()> {
        if self.find(label)?.revive() {
            self.registry.events().emit(
                EventLevel::Info,
                "router",
                "backend.recovered",
                "backend revived by the operator; failure record cleared",
                &[("backend", label)],
            );
        }
        Ok(())
    }

    /// Snapshots the registry this core reports into — the routing tier's
    /// `DSMX` scrape body.
    pub(crate) fn metrics(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }

    /// Drains the spans buffered by this core's tracer — the routing tier's
    /// `DSTX` scrape body.
    pub(crate) fn traces(&self) -> TraceLog {
        TraceLog {
            spans: self.registry.tracer().drain(),
        }
    }

    /// Drains the routing tier's events — the `DSEX` scrape body. Like the
    /// other fleet scrapes this aggregates: every reachable backend's
    /// drained events plus the router's own (backend backoff/recovery and
    /// membership transitions, refresh-on-miss records), in the sink's
    /// canonical `(at_us, trace_id, name)` order. In-process fleets share
    /// one global sink with the router; the drain's take-semantics keep
    /// each record exported exactly once either way.
    pub(crate) fn events(&self) -> EventLog {
        let m = self.snapshot();
        let drained: Vec<Option<EventLog>> = std::thread::scope(|scope| {
            let handles: Vec<_> = m
                .entries
                .iter()
                .map(|entry| scope.spawn(move || entry.backend.events().ok()))
                .collect();
            handles
                .into_iter()
                .map(|handle| handle.join().expect("fleet event thread panicked"))
                .collect()
        });
        let mut events: Vec<dsig_obs::EventRecord> = drained.into_iter().flatten().flat_map(|log| log.events).collect();
        events.extend(self.registry.events().drain());
        events.sort_by(|a, b| (a.at_us, a.trace_id, &a.name).cmp(&(b.at_us, b.trace_id, &b.name)));
        EventLog { events }
    }

    /// Scrapes every member's own metrics concurrently (one thread per
    /// member). A dead member yields `None` — the fleet scrape skips it and
    /// [`RouterCore::health`] counts it as down.
    fn scrape_backends(&self, m: &Membership) -> Vec<Option<MetricsSnapshot>> {
        std::thread::scope(|scope| {
            let handles: Vec<_> = m
                .entries
                .iter()
                .map(|entry| scope.spawn(move || entry.backend.metrics().ok()))
                .collect();
            handles
                .into_iter()
                .map(|handle| handle.join().expect("fleet scrape thread panicked"))
                .collect()
        })
    }

    /// Answers a `DSFM` fleet-metrics scrape: every member's snapshot under
    /// `backend.<label>.`, the cross-backend rollup under `fleet.`, and the
    /// router's own registry unprefixed. Unreachable members are skipped —
    /// a fleet scrape is an observation, never a failure.
    pub(crate) fn fleet_metrics(&self) -> MetricsSnapshot {
        let m = self.snapshot();
        let scraped = self.scrape_backends(&m);
        let parts: Vec<(String, MetricsSnapshot)> = m
            .entries
            .iter()
            .zip(scraped)
            .filter_map(|(entry, snapshot)| snapshot.map(|s| (entry.backend.label().to_string(), s)))
            .collect();
        MetricsSnapshot::merge_fleet(&parts, &self.registry.snapshot())
    }

    /// Answers a `DSFT` fleet-trace drain: every reachable member's spans
    /// plus the router's own, in the tracer's canonical
    /// `(trace_id, start_us, span_id)` order. Consuming, like every drain.
    pub(crate) fn fleet_traces(&self) -> TraceLog {
        let m = self.snapshot();
        let drained: Vec<Option<TraceLog>> = std::thread::scope(|scope| {
            let handles: Vec<_> = m
                .entries
                .iter()
                .map(|entry| scope.spawn(move || entry.backend.traces().ok()))
                .collect();
            handles
                .into_iter()
                .map(|handle| handle.join().expect("fleet trace thread panicked"))
                .collect()
        });
        let mut spans: Vec<dsig_obs::SpanRecord> = drained.into_iter().flatten().flat_map(|log| log.spans).collect();
        spans.extend(self.registry.tracer().drain());
        spans.sort_by_key(|span| (span.trace_id, span.start_us, span.span_id));
        TraceLog { spans }
    }

    /// Answers a `DSHC` health check: scrapes the fleet, counts a member
    /// down when its health record backs it off *or* its scrape fails
    /// (a killed backend is down right now even before any forward has
    /// armed the backoff), and verdicts the `fleet.` rollup against the
    /// configured [`SloPolicy`]. The report carries the live membership
    /// epoch, so an operator watching health sees churn as it lands.
    pub(crate) fn health(&self) -> HealthReport {
        let now = Instant::now();
        let m = self.snapshot();
        let scraped = self.scrape_backends(&m);
        let down = m
            .entries
            .iter()
            .zip(&scraped)
            .filter(|(entry, snapshot)| snapshot.is_none() || !entry.backend.is_available(now))
            .count();
        let parts: Vec<(String, MetricsSnapshot)> = m
            .entries
            .iter()
            .zip(scraped)
            .filter_map(|(entry, snapshot)| snapshot.map(|s| (entry.backend.label().to_string(), s)))
            .collect();
        let merged = MetricsSnapshot::merge_fleet(&parts, &self.registry.snapshot());
        let mut report =
            self.config
                .slo
                .evaluate(health_sample(&merged, "fleet.", down as u32, m.entries.len() as u32));
        report.epoch = m.epoch;
        report
    }

    /// The live roster: epoch plus every member's label, id and state — the
    /// `DSAQ` list body, also returned by every admin verb so the caller
    /// sees the fleet it just changed.
    pub(crate) fn roster(&self) -> FleetRoster {
        let m = self.snapshot();
        let now = Instant::now();
        FleetRoster {
            epoch: m.epoch,
            entries: m
                .entries
                .iter()
                .map(|entry| RosterEntry {
                    label: entry.backend.label().to_string(),
                    id: entry.backend.id(),
                    state: if entry.draining {
                        BackendState::Draining
                    } else if !entry.backend.is_available(now) {
                        BackendState::BackedOff
                    } else {
                        BackendState::Active
                    },
                })
                .collect(),
        }
    }

    /// Dispatches one decoded `DSAQ` admin verb.
    pub(crate) fn admin(&self, request: &AdminRequest) -> Result<FleetRoster> {
        match request {
            AdminRequest::Join { label } => self.join_by_label(label),
            AdminRequest::Leave { label } => self.leave_backend(label),
            AdminRequest::Drain { label } => self.drain_backend(label),
            AdminRequest::List => Ok(self.roster()),
        }
    }

    /// The wire join: an existing member (any transport) is reactivated by
    /// label; a new one must be a dialable `host:port`, joined as a TCP
    /// backend.
    pub(crate) fn join_by_label(&self, label: &str) -> Result<FleetRoster> {
        let _admin = self.admin.lock().expect("admin lock poisoned");
        let m = self.snapshot();
        if let Some(index) = m.index_of(label) {
            return self.reactivate_locked(&m, index);
        }
        let addr: SocketAddr = label.parse().map_err(|_| {
            RouterError::Dsig(DsigError::InvalidConfig(format!(
                "cannot join {label:?}: not a member and not a dialable host:port address"
            )))
        })?;
        self.join_new_locked(&m, Backend::tcp(addr))
    }

    /// Admits an explicit [`Backend`] (TCP or in-process) into the live
    /// fleet, migrating the goldens it now owns onto it **before** the
    /// membership flips — a joining backend warms up without operator
    /// action and never sees a request it cannot answer. Idempotent by
    /// label: joining an active member is a no-op, joining a draining one
    /// reactivates it.
    pub(crate) fn join_backend(&self, backend: Backend) -> Result<FleetRoster> {
        let _admin = self.admin.lock().expect("admin lock poisoned");
        let m = self.snapshot();
        if let Some(index) = m.index_of(backend.label()) {
            return self.reactivate_locked(&m, index);
        }
        self.join_new_locked(&m, backend)
    }

    /// Reactivates an existing member (caller holds the admin lock): a
    /// draining member returns to active duty (with its owned goldens
    /// re-warmed), an active member is an acknowledged no-op.
    fn reactivate_locked(&self, m: &Membership, index: usize) -> Result<FleetRoster> {
        if !m.entries[index].draining {
            return Ok(self.roster());
        }
        let mut entries = m.entries.clone();
        entries[index].draining = false;
        let next = Arc::new(Membership {
            epoch: m.epoch + 1,
            entries,
        });
        self.warm_up(&next, index)?;
        let label = next.entries[index].backend.label().to_string();
        self.install(
            next,
            "backend.joined",
            "draining member reactivated and re-warmed",
            &label,
        );
        Ok(self.roster())
    }

    /// Admits a brand-new member (caller holds the admin lock): goldens
    /// migrate first, the membership flips second.
    fn join_new_locked(&self, m: &Membership, backend: Backend) -> Result<FleetRoster> {
        if m.entries.iter().any(|entry| entry.backend.id() == backend.id()) {
            return Err(RouterError::Dsig(DsigError::InvalidConfig(format!(
                "backend {} collides with an existing rendezvous id",
                backend.label()
            ))));
        }
        let label = backend.label().to_string();
        let mut entries = m.entries.clone();
        entries.push(MemberEntry {
            metrics: BackendMetrics::new(&self.registry, &label),
            backend: Arc::new(backend),
            draining: false,
        });
        let index = entries.len() - 1;
        let next = Arc::new(Membership {
            epoch: m.epoch + 1,
            entries,
        });
        self.warm_up(&next, index)?;
        self.install(
            next,
            "backend.joined",
            "new member admitted; owned goldens migrated",
            &label,
        );
        Ok(self.roster())
    }

    /// Pushes every golden whose replica set (under `next`'s ranking)
    /// includes member `index` onto that member — the join-time migration.
    /// Any push failure rejects the whole join: an unreachable backend must
    /// not enter the rotation cold.
    fn warm_up(&self, next: &Membership, index: usize) -> Result<usize> {
        let replicas = self.config.replicas.max(1);
        let mut migrated = 0usize;
        for key in self.store.keys() {
            let rank = next.rank(key);
            if !rank.iter().take(replicas).any(|&i| i == index) {
                continue;
            }
            let Some(record) = self.store.get(key) else { continue };
            next.entries[index].backend.push(key, &record)?;
            migrated += 1;
        }
        Ok(migrated)
    }

    /// Removes the member at `label` from the fleet, re-replicating its
    /// goldens to the surviving owners **before** it goes. Idempotent by
    /// label: leaving an unknown member is an acknowledged no-op. The last
    /// member cannot leave — a router with no backends can answer nothing.
    pub(crate) fn leave_backend(&self, label: &str) -> Result<FleetRoster> {
        let _admin = self.admin.lock().expect("admin lock poisoned");
        let m = self.snapshot();
        let Some(index) = m.index_of(label) else {
            return Ok(self.roster());
        };
        if m.entries.len() == 1 {
            return Err(RouterError::Dsig(DsigError::InvalidConfig(format!(
                "cannot remove {label:?}: it is the last backend of the fleet"
            ))));
        }
        self.rereplicate_from(&m, index);
        let mut entries = m.entries.clone();
        entries.remove(index);
        let next = Arc::new(Membership {
            epoch: m.epoch + 1,
            entries,
        });
        self.install(
            next,
            "backend.left",
            "member removed; its golden replicas re-homed to survivors",
            label,
        );
        Ok(self.roster())
    }

    /// Marks the member at `label` draining: new work steers away (it stays
    /// ranked as a failover last resort) and its goldens are re-replicated
    /// to the non-draining members so the replica count survives its
    /// eventual removal. Idempotent by label; draining an unknown member is
    /// an error (a drain never removes, so resubmission converges).
    pub(crate) fn drain_backend(&self, label: &str) -> Result<FleetRoster> {
        let _admin = self.admin.lock().expect("admin lock poisoned");
        let m = self.snapshot();
        let Some(index) = m.index_of(label) else {
            return Err(RouterError::Dsig(DsigError::InvalidConfig(format!(
                "cannot drain unknown backend {label:?}"
            ))));
        };
        if m.entries[index].draining {
            return Ok(self.roster());
        }
        let mut entries = m.entries.clone();
        entries[index].draining = true;
        let next = Arc::new(Membership {
            epoch: m.epoch + 1,
            entries,
        });
        self.install(
            Arc::clone(&next),
            "backend.draining",
            "member draining: new work steers away; goldens re-replicating",
            label,
        );
        self.rereplicate_from(&next, index);
        Ok(self.roster())
    }

    /// Installs a new membership snapshot and logs the transition.
    fn install(&self, next: Arc<Membership>, event: &str, detail: &str, label: &str) {
        let epoch = next.epoch;
        self.metrics.epoch.set(epoch as f64);
        *self.membership.write().expect("membership lock poisoned") = next;
        self.registry.events().emit(
            EventLevel::Info,
            "router",
            event,
            detail,
            &[("backend", label), ("epoch", &epoch.to_string())],
        );
    }

    /// Re-replicates every golden whose replica set includes member `index`
    /// onto the first `replicas` other, non-draining members — the shared
    /// engine behind leave, drain and replica healing. Best-effort: a
    /// failing target is marked down and skipped (refresh-on-miss covers
    /// any copy this pass could not place). Returns the goldens re-homed.
    fn rereplicate_from(&self, m: &Membership, index: usize) -> usize {
        let now = Instant::now();
        let replicas = self.config.replicas.max(1);
        let mut rehomed = 0usize;
        for key in self.store.keys() {
            let rank = m.rank(key);
            if !rank.iter().take(replicas).any(|&i| i == index) {
                continue;
            }
            let Some(record) = self.store.get(key) else { continue };
            let mut placed = false;
            for &target in rank
                .iter()
                .filter(|&&i| i != index && !m.entries[i].draining)
                .take(replicas)
            {
                match m.entries[target].backend.push(key, &record) {
                    Ok(()) => {
                        self.mark_success(&m.entries[target]);
                        placed = true;
                    }
                    // A plain failure note (no healing re-entry): healing a
                    // second dead member will be triggered by its own
                    // forward-path failures, not recursively from here.
                    Err(_) => self.note_failure_plain(&m.entries[target], now),
                }
            }
            if placed {
                rehomed += 1;
            }
        }
        rehomed
    }

    /// Clears a member's failure record, logging the recovery event when
    /// this ends a failure streak.
    fn mark_success(&self, entry: &MemberEntry) {
        if entry.backend.note_success() {
            self.registry.events().emit(
                EventLevel::Info,
                "router",
                "backend.recovered",
                "backend answered again after a failure streak; failure record cleared",
                &[("backend", entry.backend.label())],
            );
        }
    }

    /// Records a failure without the healing check — used inside the
    /// healing pass itself.
    fn note_failure_plain(&self, entry: &MemberEntry, now: Instant) {
        if entry.backend.note_failure(now, &self.config.health) {
            self.registry.events().emit(
                EventLevel::Warn,
                "router",
                "backend.backed_off",
                "backend failed; marked down with exponential backoff (deprioritized, not abandoned)",
                &[("backend", entry.backend.label())],
            );
        }
    }

    /// Records a failure against member `index`, logging the backed-off
    /// event when this starts a failure streak — and, when the streak's
    /// backoff saturates at the configured cap (the backend has stayed
    /// dead past every doubling), **heals the replicas**: every golden the
    /// dead member held a copy of is re-replicated to the surviving
    /// owners, once per death.
    fn mark_failure(&self, m: &Membership, index: usize, now: Instant) {
        let entry = &m.entries[index];
        self.note_failure_plain(entry, now);
        if entry.backend.arm_heal(&self.config.health) {
            let healed = self.rereplicate_from(m, index);
            self.registry.events().emit(
                EventLevel::Warn,
                "router",
                "replica.healed",
                "backend stayed dead past its backoff cap; its golden replicas were re-replicated to surviving owners",
                &[
                    ("backend", entry.backend.label()),
                    ("goldens", &healed.to_string()),
                    ("epoch", &m.epoch.to_string()),
                ],
            );
        }
    }

    /// The member a key is dispatched to right now: the highest-ranked
    /// non-draining member outside a failure backoff, or the owner if every
    /// ranked member is backed off or draining (it will be retried —
    /// backoff deprioritizes, never abandons).
    fn preferred(&self, m: &Membership, key: u64, now: Instant) -> usize {
        let rank = m.rank(key);
        rank.iter()
            .copied()
            .find(|&i| !m.entries[i].draining && m.entries[i].backend.is_available(now))
            .unwrap_or(rank[0])
    }

    /// One attempt of an arbitrary golden-addressed operation against one
    /// member, refreshing the golden from the router store when the backend
    /// misses it (the replication path's "refresh on miss").
    fn try_backend<T>(
        &self,
        backend: &Backend,
        key: u64,
        attempt: &impl Fn(&Backend) -> std::result::Result<T, ServeError>,
    ) -> std::result::Result<T, ServeError> {
        match attempt(backend) {
            Err(ServeError::UnknownGolden(_)) => match self.store.get(key) {
                Some(record) => {
                    backend.push(key, &record)?;
                    self.metrics.refresh_on_miss.inc();
                    self.registry.events().emit(
                        EventLevel::Info,
                        "router",
                        "golden.refresh_on_miss",
                        "backend missed a golden mid-request; re-pushed from the router store",
                        &[("golden_key", &format!("{key:#x}")), ("backend", backend.label())],
                    );
                    attempt(backend)
                }
                None => Err(ServeError::UnknownGolden(key)),
            },
            other => other,
        }
    }

    /// Forwards one golden-addressed operation through the failover chain:
    /// every member in rendezvous order — available non-draining ones
    /// first, then backed-off and draining ones as a last resort. The first
    /// success wins; both operations routed this way (plain screening and
    /// adaptive retest) are pure functions of `(golden, observed,
    /// band/policy)`, so *which* member answers can never change a verdict.
    fn forward_with_failover<T>(
        &self,
        key: u64,
        attempt: impl Fn(&Backend) -> std::result::Result<T, ServeError>,
    ) -> Result<T> {
        let _fanout = Span::enter(&self.metrics.fanout_us);
        // One membership snapshot and one clock sample per forward: the
        // partitioning and any failure bookkeeping below see the same fleet
        // and the same instant, so a member can never be judged available
        // and then shifted or back-dated past its own check.
        let now = Instant::now();
        let m = self.snapshot();
        let rank = m.rank(key);
        let (preferred, last_resort): (Vec<usize>, Vec<usize>) = rank
            .iter()
            .copied()
            .partition(|&i| !m.entries[i].draining && m.entries[i].backend.is_available(now));
        self.metrics.backoff.set(last_resort.len() as f64);

        let inbound = trace::current_context();
        let mut failures: Vec<String> = Vec::new();
        let mut misses = 0usize;
        for (position, &index) in preferred.iter().chain(&last_resort).enumerate() {
            let entry = &m.entries[index];
            let backend = entry.backend.as_ref();
            let mut forward_span = self.tracer.span("router.forward", "router", inbound);
            forward_span.annotate("backend", backend.label());
            if position > 0 {
                forward_span.annotate("failover", position);
            }
            // The backend call runs under the forward span's context, so a
            // serving backend parents its spans beneath this forward.
            let outcome = {
                let _ctx = trace::with_context(forward_span.context());
                self.try_backend(backend, key, &attempt)
            };
            match outcome {
                Ok(scores) => {
                    self.mark_success(entry);
                    entry.metrics.forwards.inc();
                    if position > 0 {
                        entry.metrics.failovers.inc();
                    }
                    return Ok(scores);
                }
                Err(ServeError::UnknownGolden(_)) => {
                    // The backend answered (it is healthy) — neither it nor
                    // the router store holds the golden.
                    misses += 1;
                    forward_span.annotate("outcome", "unknown_golden");
                    failures.push(format!("{}: unknown golden", backend.label()));
                }
                Err(err) => {
                    self.mark_failure(&m, index, now);
                    entry.metrics.retries.inc();
                    forward_span.annotate("outcome", "failed");
                    failures.push(format!("{}: {err}", backend.label()));
                }
            }
        }
        if misses == rank.len() {
            return Err(RouterError::UnknownGolden(key));
        }
        Err(RouterError::AllBackendsFailed {
            key,
            detail: failures.join("; "),
        })
    }

    /// Forwards one screening sub-batch through the failover chain.
    fn forward_chunk(&self, key: u64, chunk: &[Signature]) -> Result<Vec<ScoreResult>> {
        self.forward_with_failover(key, |backend| backend.screen(key, chunk))
    }

    /// Scores a batch against one golden: the batch is split at the
    /// configured sub-batch boundary and each piece is forwarded through the
    /// failover chain, so a backend dying mid-batch only re-routes the
    /// not-yet-scored remainder.
    pub(crate) fn screen(&self, key: u64, signatures: &[Signature]) -> Result<Vec<ScoreResult>> {
        let sub_batch = self.config.sub_batch.max(1);
        let mut screen_span = self.tracer.span("router.screen", "router", trace::current_context());
        screen_span.annotate("batch", signatures.len());
        if signatures.is_empty() {
            // Forward the empty batch anyway so an unknown fingerprint is
            // reported exactly like the serving tier reports it.
            let _ctx = trace::with_context(screen_span.context());
            return self.forward_chunk(key, signatures);
        }
        let mut results = Vec::with_capacity(signatures.len());
        for (piece, chunk) in signatures.chunks(sub_batch).enumerate() {
            let mut sub_span = self.tracer.span("router.sub_batch", "router", screen_span.context());
            sub_span.annotate("piece", piece);
            sub_span.annotate("items", chunk.len());
            let _ctx = trace::with_context(sub_span.context());
            results.extend(self.forward_chunk(key, chunk)?);
        }
        Ok(results)
    }

    /// Screens an adaptive-retest batch: the request is split at the
    /// configured sub-batch boundary (counted in devices) and each piece is
    /// forwarded to the golden's owner along the same failover chain plain
    /// screening uses — the owning shard set reruns marginal devices with
    /// averaged repeats before verdicting, and a backend dying mid-batch
    /// only re-routes the not-yet-decided remainder.
    pub(crate) fn screen_retest(&self, request: &RetestRequest) -> Result<Vec<RetestScore>> {
        let key = request.golden_key;
        let mut retest_span = self.tracer.span("router.retest", "router", trace::current_context());
        retest_span.annotate("devices", request.items.len());
        if request.items.is_empty() {
            // Forward the empty batch anyway so an unknown fingerprint is
            // reported exactly like the serving tier reports it.
            let _ctx = trace::with_context(retest_span.context());
            return self.forward_with_failover(key, |backend| backend.retest(request));
        }
        let sub_batch = self.config.sub_batch.max(1);
        let mut results = Vec::with_capacity(request.items.len());
        for (piece_index, chunk) in request.items.chunks(sub_batch).enumerate() {
            let mut sub_span = self.tracer.span("router.sub_batch", "router", retest_span.context());
            sub_span.annotate("piece", piece_index);
            sub_span.annotate("items", chunk.len());
            let _ctx = trace::with_context(sub_span.context());
            let piece = RetestRequest {
                golden_key: key,
                policy: request.policy.clone(),
                items: chunk.to_vec(),
            };
            results.extend(self.forward_with_failover(key, |backend| backend.retest(&piece))?);
        }
        Ok(results)
    }

    /// Scores a multi-golden batch: items are grouped by fingerprint, the
    /// groups are bucketed by the member that currently owns them, buckets
    /// are forwarded **concurrently** (one thread per member bucket), and
    /// results are reassembled in request order. Each group still goes
    /// through the full failover chain, so a dead owner degrades to its
    /// replica instead of failing the batch.
    pub(crate) fn screen_multi(&self, items: &[(u64, Signature)]) -> Result<Vec<ScoreResult>> {
        if items.is_empty() {
            return Ok(Vec::new());
        }
        let now = Instant::now();
        let m = self.snapshot();
        // Group item indices by fingerprint (first-appearance order — the
        // same grouping the serving tier uses), then bucket the groups by
        // their currently preferred member.
        let groups = group_by_fingerprint(items);
        let mut buckets: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (group, (key, _)) in groups.iter().enumerate() {
            buckets.entry(self.preferred(&m, *key, now)).or_default().push(group);
        }

        let results: Mutex<Vec<Option<ScoreResult>>> = Mutex::new(vec![None; items.len()]);
        let errors: Mutex<Vec<(usize, RouterError)>> = Mutex::new(Vec::new());
        // The ambient trace context is thread-local; capture it here so the
        // bucket threads re-establish it before forwarding.
        let inbound = trace::current_context();
        std::thread::scope(|scope| {
            for (bucket_order, group_ids) in buckets.values().enumerate() {
                let results = &results;
                let errors = &errors;
                let groups = &groups;
                scope.spawn(move || {
                    let _ctx = trace::with_context(inbound);
                    for &group in group_ids {
                        let (key, indices) = &groups[group];
                        let key = *key;
                        let batch: Vec<Signature> = indices.iter().map(|&i| items[i].1.clone()).collect();
                        match self.screen(key, &batch) {
                            Ok(scores) => {
                                let mut slots = results.lock().expect("router results lock poisoned");
                                for (&index, score) in indices.iter().zip(scores) {
                                    slots[index] = Some(score);
                                }
                            }
                            Err(err) => {
                                errors
                                    .lock()
                                    .expect("router errors lock poisoned")
                                    .push((bucket_order, err));
                                return;
                            }
                        }
                    }
                });
            }
        });
        let mut errors = errors.into_inner().expect("router errors lock poisoned");
        if !errors.is_empty() {
            // Deterministic error selection: the first failing bucket wins.
            errors.sort_by_key(|&(bucket_order, _)| bucket_order);
            return Err(errors.remove(0).1);
        }
        Ok(results
            .into_inner()
            .expect("router results lock poisoned")
            .into_iter()
            .map(|slot| slot.expect("every item scored"))
            .collect())
    }

    /// Pushes a record to the first `replicas` non-draining members of the
    /// key's rendezvous ranking. Succeeds when at least one copy lands;
    /// members that refuse are marked down and reported in the error
    /// otherwise.
    fn replicate(&self, key: u64, record: &GoldenRecord) -> Result<usize> {
        let now = Instant::now();
        let m = self.snapshot();
        let rank = m.rank(key);
        let eligible: Vec<usize> = rank.iter().copied().filter(|&i| !m.entries[i].draining).collect();
        let targets: &[usize] = if eligible.is_empty() { &rank } else { &eligible };
        let copies = self.config.replicas.max(1).min(targets.len());
        let mut pushed = 0usize;
        let mut failures: Vec<String> = Vec::new();
        for &index in targets {
            if pushed == copies {
                break;
            }
            let entry = &m.entries[index];
            match entry.backend.push(key, record) {
                Ok(()) => {
                    self.mark_success(entry);
                    pushed += 1;
                }
                Err(err) => {
                    self.mark_failure(&m, index, now);
                    failures.push(format!("{}: {err}", entry.backend.label()));
                }
            }
        }
        if pushed == 0 {
            return Err(RouterError::AllBackendsFailed {
                key,
                detail: failures.join("; "),
            });
        }
        Ok(pushed)
    }

    /// Characterizes `(setup, reference)` into the router store and
    /// replicates the record to its owning members; returns the fingerprint
    /// clients screen with.
    pub(crate) fn characterize(
        &self,
        setup: &TestSetup,
        reference: &BiquadParams,
        band: AcceptanceBand,
    ) -> Result<u64> {
        let key = self.store.characterize(setup, reference, band)?;
        let record = self.store.get(key).expect("characterize stores the record");
        self.replicate(key, &record)?;
        Ok(key)
    }

    /// Stores an already-characterized golden and replicates it — the
    /// routing-tier form of the `DSGP` push.
    pub(crate) fn push_golden(&self, key: u64, golden: Signature, band: AcceptanceBand) -> Result<()> {
        self.store.insert(key, golden, band);
        let record = self.store.get(key).expect("insert stores the record");
        self.replicate(key, &record)?;
        Ok(())
    }

    /// Resolves a golden record: the router store first, then readback from
    /// the members in rendezvous order (caching the record locally) — the
    /// `DSGF` path a freshly restarted router uses to repopulate its store.
    pub(crate) fn golden(&self, key: u64) -> Result<std::sync::Arc<GoldenRecord>> {
        if let Some(record) = self.store.get(key) {
            return Ok(record);
        }
        let now = Instant::now();
        let m = self.snapshot();
        for index in m.rank(key) {
            let entry = &m.entries[index];
            match entry.backend.fetch(key) {
                Ok((band, golden)) => {
                    self.mark_success(entry);
                    self.store.insert(key, golden, band);
                    return Ok(self.store.get(key).expect("record just cached"));
                }
                Err(ServeError::UnknownGolden(_)) => {}
                Err(_) => self.mark_failure(&m, index, now),
            }
        }
        Err(RouterError::UnknownGolden(key))
    }
}
