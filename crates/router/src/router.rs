//! The routing core: rendezvous ranking, per-backend sub-batch splitting,
//! golden replication/refresh/readback, and health-aware deterministic
//! failover. Shared by the in-process [`crate::RouterHandle`] and the TCP
//! [`crate::Router`] front.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use cut_filters::BiquadParams;
use dsig_core::{AcceptanceBand, Signature, TestSetup};
use dsig_obs::trace::{self, Tracer};
use dsig_obs::{
    Counter, EventLevel, EventLog, Gauge, HealthReport, Histogram, MetricsSnapshot, Registry, SloPolicy, Span, TraceLog,
};
use dsig_serve::server::{group_by_fingerprint, health_sample};
use dsig_serve::{GoldenRecord, RetestRequest, RetestScore, ScoreResult, ServeError};

use crate::backend::{Backend, HealthConfig};
use crate::error::{Result, RouterError};
use crate::hash::rank_backends;
use crate::store::RouterStore;

/// Tuning knobs of a router.
#[derive(Debug, Clone, Copy)]
pub struct RouterConfig {
    /// Copies of each golden pushed across the rendezvous ranking (the owner
    /// plus `replicas - 1` followers). At least one; more copies let a
    /// failover backend answer without a mid-request refresh.
    pub replicas: usize,
    /// Maximum signatures per forwarded screening sub-batch. Large client
    /// batches are split at this boundary; results are bit-identical at
    /// every boundary because scoring is per-signature pure.
    pub sub_batch: usize,
    /// Health/backoff policy of the backend set.
    pub health: HealthConfig,
    /// SLO thresholds the `DSHC` health check verdicts the fleet against.
    pub slo: SloPolicy,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            replicas: 2,
            sub_batch: 256,
            health: HealthConfig::default(),
            slo: SloPolicy::default(),
        }
    }
}

/// The routing tier's metric handles, resolved once per core so the
/// forwarding hot path never touches the registry lock. Per-backend
/// counters embed the backend label (`router.backend.<label>.*`).
struct RouterMetrics {
    /// One counter set per backend, parallel to `RouterCore::backends`.
    per_backend: Vec<BackendMetrics>,
    /// `router.backoff_backends` — ranked backends in failure backoff at the
    /// last forward (a state gauge, refreshed per forwarded operation).
    backoff: Arc<Gauge>,
    /// `router.fanout_us` — latency of one forwarded sub-batch, failover
    /// walk included.
    fanout_us: Arc<Histogram>,
    /// `router.refresh_on_miss` — goldens re-pushed to a backend that
    /// answered "unknown golden" mid-request.
    refresh_on_miss: Arc<Counter>,
}

/// Per-backend forward/failover/retry counters.
struct BackendMetrics {
    /// `router.backend.<label>.forwards` — operations this backend answered.
    forwards: Arc<Counter>,
    /// `router.backend.<label>.failovers` — operations this backend answered
    /// after at least one higher-ranked backend was skipped or had failed.
    failovers: Arc<Counter>,
    /// `router.backend.<label>.retries` — failed attempts against this
    /// backend that sent the operation onward down the chain.
    retries: Arc<Counter>,
}

impl RouterMetrics {
    fn new(registry: &Registry, backends: &[Backend]) -> RouterMetrics {
        RouterMetrics {
            per_backend: backends
                .iter()
                .map(|backend| {
                    let name = |what: &str| format!("router.backend.{}.{what}", backend.label());
                    BackendMetrics {
                        forwards: registry.counter(&name("forwards")),
                        failovers: registry.counter(&name("failovers")),
                        retries: registry.counter(&name("retries")),
                    }
                })
                .collect(),
            backoff: registry.gauge("router.backoff_backends"),
            fanout_us: registry.histogram("router.fanout_us"),
            refresh_on_miss: registry.counter("router.refresh_on_miss"),
        }
    }
}

/// The routing state shared by every front (TCP listener, in-process
/// handles): the backend set, the authoritative golden store and the config.
pub(crate) struct RouterCore {
    backends: Vec<Backend>,
    store: RouterStore,
    config: RouterConfig,
    registry: Registry,
    tracer: Tracer,
    metrics: RouterMetrics,
}

impl RouterCore {
    /// Builds a core over a non-empty backend set with unique rendezvous
    /// ids, registering its metrics in the process-wide [`Registry::global`].
    pub(crate) fn new(backends: Vec<Backend>, store: RouterStore, config: RouterConfig) -> Result<Self> {
        Self::new_in(backends, store, config, Registry::global())
    }

    /// Like [`RouterCore::new`] with an explicit metrics registry.
    pub(crate) fn new_in(
        backends: Vec<Backend>,
        store: RouterStore,
        config: RouterConfig,
        registry: Registry,
    ) -> Result<Self> {
        if backends.is_empty() {
            return Err(RouterError::NoBackends);
        }
        let mut ids: Vec<u64> = backends.iter().map(Backend::id).collect();
        ids.sort_unstable();
        if ids.windows(2).any(|pair| pair[0] == pair[1]) {
            return Err(RouterError::Dsig(dsig_core::DsigError::InvalidConfig(
                "router backends must have unique rendezvous ids".into(),
            )));
        }
        let metrics = RouterMetrics::new(&registry, &backends);
        let tracer = registry.tracer().clone();
        Ok(RouterCore {
            backends,
            store,
            config,
            registry,
            tracer,
            metrics,
        })
    }

    pub(crate) fn store(&self) -> &RouterStore {
        &self.store
    }

    /// Snapshots the registry this core reports into — the routing tier's
    /// `DSMX` scrape body.
    pub(crate) fn metrics(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }

    /// Drains the spans buffered by this core's tracer — the routing tier's
    /// `DSTX` scrape body.
    pub(crate) fn traces(&self) -> TraceLog {
        TraceLog {
            spans: self.registry.tracer().drain(),
        }
    }

    /// Drains the routing tier's events — the `DSEX` scrape body. Like the
    /// other fleet scrapes this aggregates: every reachable backend's
    /// drained events plus the router's own (backend backoff/recovery
    /// transitions, refresh-on-miss records), in the sink's canonical
    /// `(at_us, trace_id, name)` order. In-process fleets share one global
    /// sink with the router; the drain's take-semantics keep each record
    /// exported exactly once either way.
    pub(crate) fn events(&self) -> EventLog {
        let drained: Vec<Option<EventLog>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .backends
                .iter()
                .map(|backend| scope.spawn(move || backend.events().ok()))
                .collect();
            handles
                .into_iter()
                .map(|handle| handle.join().expect("fleet event thread panicked"))
                .collect()
        });
        let mut events: Vec<dsig_obs::EventRecord> = drained.into_iter().flatten().flat_map(|log| log.events).collect();
        events.extend(self.registry.events().drain());
        events.sort_by(|a, b| (a.at_us, a.trace_id, &a.name).cmp(&(b.at_us, b.trace_id, &b.name)));
        EventLog { events }
    }

    /// Scrapes every backend's own metrics concurrently (one thread per
    /// backend). A dead backend yields `None` — the fleet scrape skips it
    /// and [`RouterCore::health`] counts it as down.
    fn scrape_backends(&self) -> Vec<Option<MetricsSnapshot>> {
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .backends
                .iter()
                .map(|backend| scope.spawn(move || backend.metrics().ok()))
                .collect();
            handles
                .into_iter()
                .map(|handle| handle.join().expect("fleet scrape thread panicked"))
                .collect()
        })
    }

    /// Answers a `DSFM` fleet-metrics scrape: every backend's snapshot under
    /// `backend.<label>.`, the cross-backend rollup under `fleet.`, and the
    /// router's own registry unprefixed. Unreachable backends are skipped —
    /// a fleet scrape is an observation, never a failure.
    pub(crate) fn fleet_metrics(&self) -> MetricsSnapshot {
        let scraped = self.scrape_backends();
        let parts: Vec<(String, MetricsSnapshot)> = self
            .backends
            .iter()
            .zip(scraped)
            .filter_map(|(backend, snapshot)| snapshot.map(|s| (backend.label().to_string(), s)))
            .collect();
        MetricsSnapshot::merge_fleet(&parts, &self.registry.snapshot())
    }

    /// Answers a `DSFT` fleet-trace drain: every reachable backend's spans
    /// plus the router's own, in the tracer's canonical
    /// `(trace_id, start_us, span_id)` order. Consuming, like every drain.
    pub(crate) fn fleet_traces(&self) -> TraceLog {
        let drained: Vec<Option<TraceLog>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .backends
                .iter()
                .map(|backend| scope.spawn(move || backend.traces().ok()))
                .collect();
            handles
                .into_iter()
                .map(|handle| handle.join().expect("fleet trace thread panicked"))
                .collect()
        });
        let mut spans: Vec<dsig_obs::SpanRecord> = drained.into_iter().flatten().flat_map(|log| log.spans).collect();
        spans.extend(self.registry.tracer().drain());
        spans.sort_by_key(|span| (span.trace_id, span.start_us, span.span_id));
        TraceLog { spans }
    }

    /// Answers a `DSHC` health check: scrapes the fleet, counts a backend
    /// down when its health record backs it off *or* its scrape fails
    /// (a killed backend is down right now even before any forward has
    /// armed the backoff), and verdicts the `fleet.` rollup against the
    /// configured [`SloPolicy`].
    pub(crate) fn health(&self) -> HealthReport {
        let now = Instant::now();
        let scraped = self.scrape_backends();
        let down = self
            .backends
            .iter()
            .zip(&scraped)
            .filter(|(backend, snapshot)| snapshot.is_none() || !backend.is_available(now))
            .count();
        let parts: Vec<(String, MetricsSnapshot)> = self
            .backends
            .iter()
            .zip(scraped)
            .filter_map(|(backend, snapshot)| snapshot.map(|s| (backend.label().to_string(), s)))
            .collect();
        let merged = MetricsSnapshot::merge_fleet(&parts, &self.registry.snapshot());
        self.config.slo.evaluate(health_sample(
            &merged,
            "fleet.",
            down as u32,
            self.backends.len() as u32,
        ))
    }

    /// Clears backend `index`'s failure record, logging the recovery event
    /// when this ends a failure streak.
    fn mark_success(&self, index: usize) {
        if self.backends[index].note_success() {
            self.registry.events().emit(
                EventLevel::Info,
                "router",
                "backend.recovered",
                "backend answered again after a failure streak; failure record cleared",
                &[("backend", self.backends[index].label())],
            );
        }
    }

    /// Revives backend `index` (see [`Backend::revive`]), logging the
    /// recovery event when this ended a failure streak.
    pub(crate) fn revive_backend(&self, index: usize) {
        if self.backends[index].revive() {
            self.registry.events().emit(
                EventLevel::Info,
                "router",
                "backend.recovered",
                "backend revived by the operator; failure record cleared",
                &[("backend", self.backends[index].label())],
            );
        }
    }

    /// Records a failure against backend `index`, logging the backed-off
    /// event when this starts a failure streak.
    fn mark_failure(&self, index: usize, now: Instant) {
        if self.backends[index].note_failure(now, &self.config.health) {
            self.registry.events().emit(
                EventLevel::Warn,
                "router",
                "backend.backed_off",
                "backend failed; marked down with exponential backoff (deprioritized, not abandoned)",
                &[("backend", self.backends[index].label())],
            );
        }
    }

    pub(crate) fn backends(&self) -> &[Backend] {
        &self.backends
    }

    /// Backend indices in rendezvous order for a fingerprint: owner first,
    /// then its replicas.
    pub(crate) fn rank(&self, key: u64) -> Vec<usize> {
        let ids: Vec<u64> = self.backends.iter().map(Backend::id).collect();
        rank_backends(key, &ids)
    }

    /// The backend a key is dispatched to right now: the highest-ranked
    /// backend outside a failure backoff, or the owner if every ranked
    /// backend is backed off (it will be retried — backoff deprioritizes,
    /// never abandons).
    fn preferred(&self, key: u64, now: Instant) -> usize {
        let rank = self.rank(key);
        rank.iter()
            .copied()
            .find(|&i| self.backends[i].is_available(now))
            .unwrap_or(rank[0])
    }

    /// One attempt of an arbitrary golden-addressed operation against one
    /// backend, refreshing the golden from the router store when the backend
    /// misses it (the replication path's "refresh on miss").
    fn try_backend<T>(
        &self,
        index: usize,
        key: u64,
        attempt: &impl Fn(&Backend) -> std::result::Result<T, ServeError>,
    ) -> std::result::Result<T, ServeError> {
        let backend = &self.backends[index];
        match attempt(backend) {
            Err(ServeError::UnknownGolden(_)) => match self.store.get(key) {
                Some(record) => {
                    backend.push(key, &record)?;
                    self.metrics.refresh_on_miss.inc();
                    self.registry.events().emit(
                        EventLevel::Info,
                        "router",
                        "golden.refresh_on_miss",
                        "backend missed a golden mid-request; re-pushed from the router store",
                        &[("golden_key", &format!("{key:#x}")), ("backend", backend.label())],
                    );
                    attempt(backend)
                }
                None => Err(ServeError::UnknownGolden(key)),
            },
            other => other,
        }
    }

    /// Forwards one golden-addressed operation through the failover chain:
    /// every backend in rendezvous order, available ones first, marked-down
    /// ones as a last resort. The first success wins; both operations routed
    /// this way (plain screening and adaptive retest) are pure functions of
    /// `(golden, observed, band/policy)`, so *which* backend answers can
    /// never change a verdict.
    fn forward_with_failover<T>(
        &self,
        key: u64,
        attempt: impl Fn(&Backend) -> std::result::Result<T, ServeError>,
    ) -> Result<T> {
        let _fanout = Span::enter(&self.metrics.fanout_us);
        // One clock sample per forward: availability partitioning and any
        // failure bookkeeping below see the same instant, so a backend can
        // never be judged available and then back-dated past its own check.
        let now = Instant::now();
        let rank = self.rank(key);
        let (available, backed_off): (Vec<usize>, Vec<usize>) =
            rank.iter().copied().partition(|&i| self.backends[i].is_available(now));
        self.metrics.backoff.set(backed_off.len() as f64);

        let inbound = trace::current_context();
        let mut failures: Vec<String> = Vec::new();
        let mut misses = 0usize;
        for (position, &index) in available.iter().chain(&backed_off).enumerate() {
            let backend = &self.backends[index];
            let counters = &self.metrics.per_backend[index];
            let mut forward_span = self.tracer.span("router.forward", "router", inbound);
            forward_span.annotate("backend", backend.label());
            if position > 0 {
                forward_span.annotate("failover", position);
            }
            // The backend call runs under the forward span's context, so a
            // serving backend parents its spans beneath this forward.
            let outcome = {
                let _ctx = trace::with_context(forward_span.context());
                self.try_backend(index, key, &attempt)
            };
            match outcome {
                Ok(scores) => {
                    self.mark_success(index);
                    counters.forwards.inc();
                    if position > 0 {
                        counters.failovers.inc();
                    }
                    return Ok(scores);
                }
                Err(ServeError::UnknownGolden(_)) => {
                    // The backend answered (it is healthy) — neither it nor
                    // the router store holds the golden.
                    misses += 1;
                    forward_span.annotate("outcome", "unknown_golden");
                    failures.push(format!("{}: unknown golden", backend.label()));
                }
                Err(err) => {
                    self.mark_failure(index, now);
                    counters.retries.inc();
                    forward_span.annotate("outcome", "failed");
                    failures.push(format!("{}: {err}", backend.label()));
                }
            }
        }
        if misses == rank.len() {
            return Err(RouterError::UnknownGolden(key));
        }
        Err(RouterError::AllBackendsFailed {
            key,
            detail: failures.join("; "),
        })
    }

    /// Forwards one screening sub-batch through the failover chain.
    fn forward_chunk(&self, key: u64, chunk: &[Signature]) -> Result<Vec<ScoreResult>> {
        self.forward_with_failover(key, |backend| backend.screen(key, chunk))
    }

    /// Scores a batch against one golden: the batch is split at the
    /// configured sub-batch boundary and each piece is forwarded through the
    /// failover chain, so a backend dying mid-batch only re-routes the
    /// not-yet-scored remainder.
    pub(crate) fn screen(&self, key: u64, signatures: &[Signature]) -> Result<Vec<ScoreResult>> {
        let sub_batch = self.config.sub_batch.max(1);
        let mut screen_span = self.tracer.span("router.screen", "router", trace::current_context());
        screen_span.annotate("batch", signatures.len());
        if signatures.is_empty() {
            // Forward the empty batch anyway so an unknown fingerprint is
            // reported exactly like the serving tier reports it.
            let _ctx = trace::with_context(screen_span.context());
            return self.forward_chunk(key, signatures);
        }
        let mut results = Vec::with_capacity(signatures.len());
        for (piece, chunk) in signatures.chunks(sub_batch).enumerate() {
            let mut sub_span = self.tracer.span("router.sub_batch", "router", screen_span.context());
            sub_span.annotate("piece", piece);
            sub_span.annotate("items", chunk.len());
            let _ctx = trace::with_context(sub_span.context());
            results.extend(self.forward_chunk(key, chunk)?);
        }
        Ok(results)
    }

    /// Screens an adaptive-retest batch: the request is split at the
    /// configured sub-batch boundary (counted in devices) and each piece is
    /// forwarded to the golden's owner along the same failover chain plain
    /// screening uses — the owning shard set reruns marginal devices with
    /// averaged repeats before verdicting, and a backend dying mid-batch
    /// only re-routes the not-yet-decided remainder.
    pub(crate) fn screen_retest(&self, request: &RetestRequest) -> Result<Vec<RetestScore>> {
        let key = request.golden_key;
        let mut retest_span = self.tracer.span("router.retest", "router", trace::current_context());
        retest_span.annotate("devices", request.items.len());
        if request.items.is_empty() {
            // Forward the empty batch anyway so an unknown fingerprint is
            // reported exactly like the serving tier reports it.
            let _ctx = trace::with_context(retest_span.context());
            return self.forward_with_failover(key, |backend| backend.retest(request));
        }
        let sub_batch = self.config.sub_batch.max(1);
        let mut results = Vec::with_capacity(request.items.len());
        for (piece_index, chunk) in request.items.chunks(sub_batch).enumerate() {
            let mut sub_span = self.tracer.span("router.sub_batch", "router", retest_span.context());
            sub_span.annotate("piece", piece_index);
            sub_span.annotate("items", chunk.len());
            let _ctx = trace::with_context(sub_span.context());
            let piece = RetestRequest {
                golden_key: key,
                policy: request.policy.clone(),
                items: chunk.to_vec(),
            };
            results.extend(self.forward_with_failover(key, |backend| backend.retest(&piece))?);
        }
        Ok(results)
    }

    /// Scores a multi-golden batch: items are grouped by fingerprint, the
    /// groups are bucketed by the backend that currently owns them, buckets
    /// are forwarded **concurrently** (one thread per backend bucket), and
    /// results are reassembled in request order. Each group still goes
    /// through the full failover chain, so a dead owner degrades to its
    /// replica instead of failing the batch.
    pub(crate) fn screen_multi(&self, items: &[(u64, Signature)]) -> Result<Vec<ScoreResult>> {
        if items.is_empty() {
            return Ok(Vec::new());
        }
        let now = Instant::now();
        // Group item indices by fingerprint (first-appearance order — the
        // same grouping the serving tier uses), then bucket the groups by
        // their currently preferred backend.
        let groups = group_by_fingerprint(items);
        let mut buckets: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (group, (key, _)) in groups.iter().enumerate() {
            buckets.entry(self.preferred(*key, now)).or_default().push(group);
        }

        let results: Mutex<Vec<Option<ScoreResult>>> = Mutex::new(vec![None; items.len()]);
        let errors: Mutex<Vec<(usize, RouterError)>> = Mutex::new(Vec::new());
        // The ambient trace context is thread-local; capture it here so the
        // bucket threads re-establish it before forwarding.
        let inbound = trace::current_context();
        std::thread::scope(|scope| {
            for (bucket_order, group_ids) in buckets.values().enumerate() {
                let results = &results;
                let errors = &errors;
                let groups = &groups;
                scope.spawn(move || {
                    let _ctx = trace::with_context(inbound);
                    for &group in group_ids {
                        let (key, indices) = &groups[group];
                        let key = *key;
                        let batch: Vec<Signature> = indices.iter().map(|&i| items[i].1.clone()).collect();
                        match self.screen(key, &batch) {
                            Ok(scores) => {
                                let mut slots = results.lock().expect("router results lock poisoned");
                                for (&index, score) in indices.iter().zip(scores) {
                                    slots[index] = Some(score);
                                }
                            }
                            Err(err) => {
                                errors
                                    .lock()
                                    .expect("router errors lock poisoned")
                                    .push((bucket_order, err));
                                return;
                            }
                        }
                    }
                });
            }
        });
        let mut errors = errors.into_inner().expect("router errors lock poisoned");
        if !errors.is_empty() {
            // Deterministic error selection: the first failing bucket wins.
            errors.sort_by_key(|&(bucket_order, _)| bucket_order);
            return Err(errors.remove(0).1);
        }
        Ok(results
            .into_inner()
            .expect("router results lock poisoned")
            .into_iter()
            .map(|slot| slot.expect("every item scored"))
            .collect())
    }

    /// Pushes a record to the first `replicas` backends of the key's
    /// rendezvous ranking. Succeeds when at least one copy lands; backends
    /// that refuse are marked down and reported in the error otherwise.
    fn replicate(&self, key: u64, record: &GoldenRecord) -> Result<usize> {
        let now = Instant::now();
        let rank = self.rank(key);
        let copies = self.config.replicas.max(1).min(rank.len());
        let mut pushed = 0usize;
        let mut failures: Vec<String> = Vec::new();
        for &index in &rank {
            if pushed == copies {
                break;
            }
            let backend = &self.backends[index];
            match backend.push(key, record) {
                Ok(()) => {
                    self.mark_success(index);
                    pushed += 1;
                }
                Err(err) => {
                    self.mark_failure(index, now);
                    failures.push(format!("{}: {err}", backend.label()));
                }
            }
        }
        if pushed == 0 {
            return Err(RouterError::AllBackendsFailed {
                key,
                detail: failures.join("; "),
            });
        }
        Ok(pushed)
    }

    /// Characterizes `(setup, reference)` into the router store and
    /// replicates the record to its owning backends; returns the fingerprint
    /// clients screen with.
    pub(crate) fn characterize(
        &self,
        setup: &TestSetup,
        reference: &BiquadParams,
        band: AcceptanceBand,
    ) -> Result<u64> {
        let key = self.store.characterize(setup, reference, band)?;
        let record = self.store.get(key).expect("characterize stores the record");
        self.replicate(key, &record)?;
        Ok(key)
    }

    /// Stores an already-characterized golden and replicates it — the
    /// routing-tier form of the `DSGP` push.
    pub(crate) fn push_golden(&self, key: u64, golden: Signature, band: AcceptanceBand) -> Result<()> {
        self.store.insert(key, golden, band);
        let record = self.store.get(key).expect("insert stores the record");
        self.replicate(key, &record)?;
        Ok(())
    }

    /// Resolves a golden record: the router store first, then readback from
    /// the backends in rendezvous order (caching the record locally) — the
    /// `DSGF` path a freshly restarted router uses to repopulate its store.
    pub(crate) fn golden(&self, key: u64) -> Result<std::sync::Arc<GoldenRecord>> {
        if let Some(record) = self.store.get(key) {
            return Ok(record);
        }
        let now = Instant::now();
        for index in self.rank(key) {
            let backend = &self.backends[index];
            match backend.fetch(key) {
                Ok((band, golden)) => {
                    self.mark_success(index);
                    self.store.insert(key, golden, band);
                    return Ok(self.store.get(key).expect("record just cached"));
                }
                Err(ServeError::UnknownGolden(_)) => {}
                Err(_) => self.mark_failure(index, now),
            }
        }
        Err(RouterError::UnknownGolden(key))
    }
}
