//! The in-process router front: the same routing core the TCP listener
//! serves, without any socket — and a constructor that spawns a whole
//! backend fleet in-process (via [`ServeHandle::spawn`]) for tests,
//! benchmarks and single-process deployments.

use std::sync::Arc;

use cut_filters::BiquadParams;
use dsig_core::{AcceptanceBand, Signature, TestSetup};
use dsig_engine::{RemoteScore, RemoteScorer};
use dsig_obs::{EventLog, HealthReport, MetricsSnapshot, TraceLog};
use dsig_serve::{GoldenRecord, GoldenStore, RetestRequest, RetestScore, ScoreResult, ServeConfig, ServeHandle};

use crate::backend::Backend;
use crate::error::Result;
use crate::router::{RouterConfig, RouterCore};
use crate::store::RouterStore;

/// An in-process client of a routing core. Cloning is cheap; each clone can
/// be used from its own thread.
#[derive(Clone)]
pub struct RouterHandle {
    core: Arc<RouterCore>,
}

impl RouterHandle {
    pub(crate) fn from_core(core: Arc<RouterCore>) -> Self {
        RouterHandle { core }
    }

    /// Spawns `backends` in-process scoring backends — each its own
    /// [`GoldenStore`] and shard set ([`ServeHandle::spawn`]), no TCP
    /// anywhere — and fronts them with a router. This is the fixture the
    /// loopback tests and the `router_throughput` bench build their fleets
    /// with.
    ///
    /// # Errors
    /// Returns [`crate::RouterError::NoBackends`] for a zero backend count.
    pub fn spawn(backends: usize, per_backend: ServeConfig, store: RouterStore, config: RouterConfig) -> Result<Self> {
        let fleet: Vec<Backend> = (0..backends)
            .map(|id| {
                Backend::local(
                    id as u64,
                    ServeHandle::spawn(Arc::new(GoldenStore::new()), per_backend.clone()),
                )
            })
            .collect();
        Self::with_backends(fleet, store, config)
    }

    /// Fronts an explicit backend set (mix TCP and in-process freely) with a
    /// routing core.
    ///
    /// # Errors
    /// Returns [`crate::RouterError::NoBackends`] for an empty set and an
    /// invalid-config error for duplicate rendezvous ids.
    pub fn with_backends(backends: Vec<Backend>, store: RouterStore, config: RouterConfig) -> Result<Self> {
        Ok(RouterHandle {
            core: Arc::new(RouterCore::new(backends, store, config)?),
        })
    }

    /// The router's authoritative golden store.
    pub fn store(&self) -> &RouterStore {
        self.core.store()
    }

    /// Number of backends behind this router.
    pub fn backend_count(&self) -> usize {
        self.core.backends().len()
    }

    /// The rendezvous ranking of a fingerprint: backend indices, owner first.
    pub fn rank(&self, key: u64) -> Vec<usize> {
        self.core.rank(key)
    }

    /// Kills backend `index` (see [`Backend::kill`]): subsequent requests
    /// routed to it fail and fail over to its replicas.
    ///
    /// # Panics
    /// Panics when `index` is out of range.
    pub fn kill_backend(&self, index: usize) {
        self.core.backends()[index].kill();
    }

    /// Revives backend `index` (see [`Backend::revive`]): undoes a kill and
    /// clears its failure record, so the next forward (and the next health
    /// check) sees it up immediately.
    ///
    /// # Panics
    /// Panics when `index` is out of range.
    pub fn revive_backend(&self, index: usize) {
        self.core.revive_backend(index);
    }

    /// Whether backend `index`'s health record currently marks it down.
    ///
    /// # Panics
    /// Panics when `index` is out of range.
    pub fn backend_down(&self, index: usize) -> bool {
        self.core.backends()[index].is_down()
    }

    /// Snapshots the routing tier's metrics (per-backend forward/failover/
    /// retry counters, backoff gauge, fan-out latency, refresh-on-miss) — the
    /// in-process equivalent of a `DSMX` scrape.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.core.metrics()
    }

    /// Drains the routing tier's buffered trace spans — the in-process
    /// equivalent of a `DSTX` scrape. Each span is exported at most once.
    pub fn traces(&self) -> TraceLog {
        self.core.traces()
    }

    /// Aggregated fleet metrics — the in-process equivalent of a `DSFM`
    /// scrape: every backend's snapshot under a `backend.<label>.` prefix,
    /// the cross-backend rollup under `fleet.`, and the router's own
    /// registry unprefixed. Unreachable backends are skipped, never fatal.
    pub fn fleet_metrics(&self) -> MetricsSnapshot {
        self.core.fleet_metrics()
    }

    /// Aggregated fleet trace drain — the in-process equivalent of a `DSFT`
    /// scrape: every reachable backend's spans plus the router's own.
    /// Consuming: each span is exported at most once fleet-wide.
    pub fn fleet_traces(&self) -> TraceLog {
        self.core.fleet_traces()
    }

    /// Drains the fleet's buffered events — the in-process equivalent of a
    /// `DSEX` scrape at the router: every reachable backend's events plus
    /// the router's own (backend backoff/recovery transitions,
    /// refresh-on-miss records). Consuming: each record is exported at most
    /// once fleet-wide.
    pub fn events(&self) -> EventLog {
        self.core.events()
    }

    /// Scrapes the fleet and verdicts it against the configured
    /// [`dsig_obs::SloPolicy`] — the in-process equivalent of a `DSHC` health
    /// check. A backend counts as down when its health record backs it off
    /// or its scrape fails.
    pub fn health(&self) -> HealthReport {
        self.core.health()
    }

    /// Characterizes `(setup, reference)` into the router store and pushes
    /// the golden to its owning backends; returns the fingerprint clients
    /// screen with.
    ///
    /// # Errors
    /// Propagates capture errors; fails if no backend accepts the push.
    pub fn characterize(&self, setup: &TestSetup, reference: &BiquadParams, band: AcceptanceBand) -> Result<u64> {
        self.core.characterize(setup, reference, band)
    }

    /// Stores an already-characterized golden and replicates it to its
    /// owning backends.
    ///
    /// # Errors
    /// Fails if no backend accepts the push.
    pub fn push_golden(&self, key: u64, golden: Signature, band: AcceptanceBand) -> Result<()> {
        self.core.push_golden(key, golden, band)
    }

    /// Resolves a golden record: the router store first, then readback from
    /// the owning backends (caching it locally).
    ///
    /// # Errors
    /// Returns [`crate::RouterError::UnknownGolden`] when nobody holds it.
    pub fn golden(&self, key: u64) -> Result<Arc<GoldenRecord>> {
        self.core.golden(key)
    }

    /// Scores a batch against the golden under `golden_key`, routed to the
    /// owning backend (with deterministic failover) and split at the
    /// configured sub-batch boundary — bit-identical to direct
    /// [`dsig_core::TestFlow`] scoring for every backend count and split.
    ///
    /// # Errors
    /// Returns [`crate::RouterError::UnknownGolden`] for an unknown
    /// fingerprint and [`crate::RouterError::AllBackendsFailed`] when the
    /// whole failover chain is down.
    pub fn screen(&self, golden_key: u64, signatures: &[Signature]) -> Result<Vec<ScoreResult>> {
        self.core.screen(golden_key, signatures)
    }

    /// Scores a single signature (a one-element [`RouterHandle::screen`]).
    ///
    /// # Errors
    /// As for [`RouterHandle::screen`].
    pub fn screen_one(&self, golden_key: u64, signature: &Signature) -> Result<ScoreResult> {
        Ok(self.screen(golden_key, std::slice::from_ref(signature))?[0])
    }

    /// Scores a multi-golden batch: split into per-backend sub-batches by
    /// rendezvous ownership, forwarded concurrently, reassembled in request
    /// order.
    ///
    /// # Errors
    /// As for [`RouterHandle::screen`].
    pub fn screen_multi(&self, items: &[(u64, Signature)]) -> Result<Vec<ScoreResult>> {
        self.core.screen_multi(items)
    }

    /// Screens an adaptive-retest batch (`DSRT`): routed to the golden's
    /// owning backend (with the same deterministic failover chain as
    /// [`RouterHandle::screen`]), whose shards rerun marginal devices with
    /// averaged repeats before verdicting.
    ///
    /// # Errors
    /// As for [`RouterHandle::screen`].
    pub fn screen_retest(&self, request: &RetestRequest) -> Result<Vec<RetestScore>> {
        self.core.screen_retest(request)
    }
}

impl RemoteScorer for RouterHandle {
    fn screen_remote(&self, golden_key: u64, signatures: &[Signature]) -> dsig_core::Result<Vec<RemoteScore>> {
        self.screen(golden_key, signatures)
            // The score conversion is dsig-serve's `From<ScoreResult>`.
            .map(|scores| scores.into_iter().map(Into::into).collect())
            .map_err(crate::RouterError::into_dsig)
    }

    fn retest_remote(
        &self,
        golden_key: u64,
        policy: &dsig_core::RetestPolicy,
        devices: &[dsig_engine::RetestDevice],
    ) -> dsig_core::Result<Vec<dsig_engine::RemoteRetest>> {
        self.screen_retest(&dsig_serve::server::retest_request_of(golden_key, policy, devices))
            .map(|scores| scores.into_iter().map(Into::into).collect())
            .map_err(crate::RouterError::into_dsig)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RouterError;
    use dsig_core::{SignatureEntry, TestOutcome, ZoneCode};

    fn sig(codes: &[(u32, f64)]) -> Signature {
        Signature::new(
            codes
                .iter()
                .map(|&(c, d)| SignatureEntry {
                    code: ZoneCode(c),
                    duration: d,
                })
                .collect(),
        )
        .unwrap()
    }

    fn band(threshold: f64) -> AcceptanceBand {
        AcceptanceBand::new(threshold).unwrap()
    }

    fn fleet(backends: usize, replicas: usize) -> RouterHandle {
        RouterHandle::spawn(
            backends,
            ServeConfig::with_shards(1),
            RouterStore::new(),
            RouterConfig {
                replicas,
                sub_batch: 3, // force sub-batch splits in tests
                ..RouterConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn empty_fleets_and_duplicate_ids_are_rejected() {
        assert!(matches!(
            RouterHandle::spawn(
                0,
                ServeConfig::with_shards(1),
                RouterStore::new(),
                RouterConfig::default()
            ),
            Err(RouterError::NoBackends)
        ));
        let dup = vec![
            Backend::local(
                1,
                ServeHandle::spawn(Arc::new(GoldenStore::new()), ServeConfig::with_shards(1)),
            ),
            Backend::local(
                1,
                ServeHandle::spawn(Arc::new(GoldenStore::new()), ServeConfig::with_shards(1)),
            ),
        ];
        assert!(RouterHandle::with_backends(dup, RouterStore::new(), RouterConfig::default()).is_err());
    }

    #[test]
    fn pushed_goldens_land_on_the_owner_and_screen_correctly() {
        let router = fleet(4, 2);
        let golden = sig(&[(1, 100e-6), (3, 100e-6)]);
        router.push_golden(0xC0FFEE, golden.clone(), band(0.05)).unwrap();
        assert_eq!(router.store().len(), 1);
        // Screening the golden itself through the router is a clean pass.
        let results = router
            .screen(0xC0FFEE, &[golden.clone(), sig(&[(1, 100e-6), (7, 100e-6)])])
            .unwrap();
        assert_eq!(results[0].ndf, 0.0);
        assert_eq!(results[0].outcome, TestOutcome::Pass);
        assert!(results[1].ndf > 0.0);
        // Readback resolves from the store; unknown keys are reported as such.
        assert_eq!(router.golden(0xC0FFEE).unwrap().golden, golden);
        assert!(matches!(router.golden(0xBAD), Err(RouterError::UnknownGolden(0xBAD))));
        assert!(matches!(
            router.screen(0xBAD, &[golden]),
            Err(RouterError::UnknownGolden(0xBAD))
        ));
    }

    #[test]
    fn failover_refreshes_the_golden_and_keeps_verdicts_identical() {
        let router = fleet(3, 1); // a single copy: failover must refresh
        let golden = sig(&[(1, 100e-6), (3, 100e-6)]);
        router.push_golden(7, golden.clone(), band(0.05)).unwrap();
        let observed = vec![
            golden.clone(),
            sig(&[(1, 100e-6), (3, 90e-6), (7, 10e-6)]),
            sig(&[(5, 200e-6)]),
        ];
        let before = router.screen(7, &observed).unwrap();
        // Kill the owner: the next screen fails over to the replica, which
        // misses the golden and is refreshed from the router store mid-call.
        let owner = router.rank(7)[0];
        router.kill_backend(owner);
        let after = router.screen(7, &observed).unwrap();
        assert_eq!(after, before, "failover must not change a single verdict");
        assert!(router.backend_down(owner), "the dead owner must be marked down");
        // The router survives repeated screens with the owner gone.
        assert_eq!(router.screen(7, &observed).unwrap(), before);
    }

    #[test]
    fn multi_screen_reassembles_across_backends_in_request_order() {
        let router = fleet(4, 2);
        // Several goldens with distinguishable signatures.
        let keys: Vec<u64> = (0..5).map(|k| 0x1000 + k).collect();
        for (i, &key) in keys.iter().enumerate() {
            router
                .push_golden(key, sig(&[(1, 100e-6), (i as u32 + 2, 100e-6)]), band(0.05))
                .unwrap();
        }
        // Interleaved items: each scores its own golden cleanly, a shifted
        // variant of the next one dirtily.
        let items: Vec<(u64, Signature)> = (0..30)
            .map(|n| {
                let key = keys[n % keys.len()];
                (key, sig(&[(1, 100e-6), ((n % keys.len()) as u32 + 2, 100e-6)]))
            })
            .collect();
        let results = router.screen_multi(&items).unwrap();
        assert_eq!(results.len(), items.len());
        for (n, result) in results.iter().enumerate() {
            assert_eq!(result.ndf, 0.0, "item {n} must match its own golden");
        }
        // Bit-identical to screening each key separately.
        for (item, result) in items.iter().zip(&results) {
            let single = router.screen_one(item.0, &item.1).unwrap();
            assert_eq!(single, *result);
        }
        // Unknown key anywhere fails the whole multi-batch deterministically.
        let mut bad = items;
        bad[4].0 = 0xFFFF;
        assert!(matches!(
            router.screen_multi(&bad),
            Err(RouterError::UnknownGolden(0xFFFF))
        ));
        assert!(router.screen_multi(&[]).unwrap().is_empty());
    }

    #[test]
    fn retest_requests_route_with_failover_and_match_direct_serving() {
        use dsig_core::RetestPolicy;
        use dsig_serve::RetestItem;

        let router = fleet(3, 1); // one copy: failover must refresh
        let golden = sig(&[(1, 100e-6), (3, 100e-6)]);
        router.push_golden(0xAB, golden.clone(), band(0.05)).unwrap();
        // A marginal device (one short zone rewrite) plus a clean one; the
        // repeats confirm the rewrite, so the marginal device fails.
        let marginal = sig(&[(1, 100e-6), (3, 90e-6), (7, 10e-6)]);
        let request = RetestRequest {
            golden_key: 0xAB,
            policy: RetestPolicy::new(0.03, vec![2]).unwrap(),
            items: vec![
                RetestItem {
                    initial: golden.clone(),
                    repeats: vec![],
                },
                RetestItem {
                    initial: marginal.clone(),
                    repeats: vec![marginal.clone(), marginal.clone()],
                },
            ],
        };
        // Reference: a standalone serve handle holding the same golden.
        let direct = ServeHandle::spawn(Arc::new(GoldenStore::new()), ServeConfig::with_shards(2));
        direct.push_golden(0xAB, golden.clone(), band(0.05));
        let expected = direct.screen_retest(&request).unwrap();

        let routed = router.screen_retest(&request).unwrap();
        assert_eq!(routed, expected, "routed retest must equal direct serving");
        assert!(!routed[0].marginal);
        assert!(routed[1].marginal);
        assert_eq!(routed[1].repeats_used, 2);

        // Unknown fingerprints are reported as such (every live backend must
        // answer "unknown"), and an empty batch still routes — the error
        // surface matches plain screening.
        let unknown = RetestRequest {
            golden_key: 0xBAD,
            ..request.clone()
        };
        assert!(matches!(
            router.screen_retest(&unknown),
            Err(RouterError::UnknownGolden(0xBAD))
        ));
        let empty = RetestRequest {
            golden_key: 0xAB,
            policy: request.policy.clone(),
            items: vec![],
        };
        assert!(router.screen_retest(&empty).unwrap().is_empty());

        // Kill the owner: the retest fails over (refreshing the golden from
        // the router store) without changing a single verdict.
        let owner = router.rank(0xAB)[0];
        router.kill_backend(owner);
        assert_eq!(router.screen_retest(&request).unwrap(), expected);
        assert!(router.backend_down(owner));
    }

    #[test]
    fn metrics_scrape_tracks_forwards_failovers_and_refreshes() {
        let router = fleet(3, 1); // one copy: failover must refresh
        let golden = sig(&[(1, 100e-6), (3, 100e-6)]);
        router.push_golden(0x0B5, golden.clone(), band(0.05)).unwrap();
        // Fleet metrics share the process-global registry (other tests bump
        // the same counters), so everything is asserted as before/after
        // deltas with >= — counters are monotonic.
        let sum = |snapshot: &MetricsSnapshot, what: &str| -> u64 {
            (0..3)
                .map(|i| {
                    snapshot
                        .counter(&format!("router.backend.local-{i}.{what}"))
                        .unwrap_or(0)
                })
                .sum()
        };
        let fanout = |snapshot: &MetricsSnapshot| snapshot.histogram("router.fanout_us").map_or(0, |h| h.count);
        let before = router.metrics();

        router.screen(0x0B5, std::slice::from_ref(&golden)).unwrap();
        // Kill the owner: the next screen retries it, fails over to the next
        // ranked backend and refreshes the golden there mid-request.
        router.kill_backend(router.rank(0x0B5)[0]);
        router.screen(0x0B5, std::slice::from_ref(&golden)).unwrap();

        let after = router.metrics();
        assert!(sum(&after, "forwards") >= sum(&before, "forwards") + 2);
        assert!(sum(&after, "retries") > sum(&before, "retries"));
        assert!(sum(&after, "failovers") > sum(&before, "failovers"));
        assert!(
            after.counter("router.refresh_on_miss").unwrap() > before.counter("router.refresh_on_miss").unwrap_or(0)
        );
        assert!(fanout(&after) >= fanout(&before) + 2);
        assert!(after.gauge("router.backoff_backends").is_some());
    }

    #[test]
    fn fleet_scrape_prefixes_backends_rolls_up_and_health_tracks_kills() {
        // Isolated per-backend registries make the health verdict
        // deterministic even though the router core itself registers in the
        // process-global registry (the health sample only reads the `fleet.`
        // rollup, which is built from the backend snapshots).
        let fleet: Vec<Backend> = (0..3)
            .map(|id| {
                Backend::local(
                    id,
                    ServeHandle::spawn_in(
                        Arc::new(GoldenStore::new()),
                        ServeConfig::with_shards(1),
                        dsig_obs::Registry::new(),
                    ),
                )
            })
            .collect();
        let router = RouterHandle::with_backends(fleet, RouterStore::new(), RouterConfig::default()).unwrap();
        let golden = sig(&[(1, 100e-6), (3, 100e-6)]);
        router.push_golden(0xF7EE7, golden.clone(), band(0.05)).unwrap();
        router.screen(0xF7EE7, std::slice::from_ref(&golden)).unwrap();

        // Every backend appears under its own prefix, and the rollup sums
        // the per-backend counters exactly.
        let snapshot = router.fleet_metrics();
        let scored: Vec<u64> = (0..3)
            .map(|i| {
                snapshot
                    .counter(&format!("backend.local-{i}.serve.signatures_scored"))
                    .unwrap_or_else(|| panic!("backend local-{i} missing from the fleet scrape"))
            })
            .collect();
        assert_eq!(
            snapshot.counter("fleet.serve.signatures_scored").unwrap(),
            scored.iter().sum::<u64>(),
            "the fleet rollup must sum the per-backend counters"
        );
        assert!(
            scored.iter().sum::<u64>() >= 1,
            "the routed screen was scored somewhere"
        );
        // The router's own registry rides along unprefixed.
        assert!(snapshot.counter("router.refresh_on_miss").is_some());

        // PASS with everyone up; DEGRADED after one kill; FAIL when the
        // whole fleet is gone; PASS again once everyone is revived.
        assert_eq!(router.health().status, dsig_obs::HealthStatus::Pass);
        router.kill_backend(0);
        let degraded = router.health();
        assert_eq!(degraded.status, dsig_obs::HealthStatus::Degraded);
        assert_eq!((degraded.backed_off, degraded.backends), (1, 3));
        assert!(!degraded.findings.is_empty());
        router.kill_backend(1);
        router.kill_backend(2);
        assert_eq!(router.health().status, dsig_obs::HealthStatus::Fail);
        for index in 0..3 {
            router.revive_backend(index);
        }
        let recovered = router.health();
        assert_eq!(
            recovered.status,
            dsig_obs::HealthStatus::Pass,
            "{:?}",
            recovered.findings
        );

        // A dead backend is skipped by the scrape, not fatal.
        router.kill_backend(2);
        let partial = router.fleet_metrics();
        assert!(partial.counter("backend.local-2.serve.signatures_scored").is_none());
        assert!(partial.counter("backend.local-0.serve.signatures_scored").is_some());
    }

    #[test]
    fn backend_transitions_and_refreshes_surface_as_events() {
        let router = fleet(3, 1); // one copy: failover must refresh
        let golden = sig(&[(1, 100e-6), (3, 100e-6)]);
        router.push_golden(0xE7E47, golden.clone(), band(0.05)).unwrap();
        router.screen(0xE7E47, std::slice::from_ref(&golden)).unwrap();
        // Kill the owner: the next screen starts its failure streak and
        // refreshes the golden on the failover target.
        let owner = router.rank(0xE7E47)[0];
        router.kill_backend(owner);
        router.screen(0xE7E47, std::slice::from_ref(&golden)).unwrap();
        router.revive_backend(owner);

        // The event sink is process-global (other tests may interleave), so
        // assert only that this test's transitions are present.
        let names: Vec<String> = router.events().events.into_iter().map(|event| event.name).collect();
        for expected in ["backend.backed_off", "backend.recovered", "golden.refresh_on_miss"] {
            assert!(
                names.iter().any(|name| name == expected),
                "missing {expected} in {names:?}"
            );
        }
        // Fleet traces drain without error even with spans buffered by other
        // tests; a second drain of a quiet fleet yields nothing new for the
        // spans this test produced.
        let _ = router.fleet_traces();
    }

    #[test]
    fn all_backends_dead_is_reported_with_detail() {
        let router = fleet(2, 2);
        let golden = sig(&[(1, 100e-6)]);
        router.push_golden(1, golden.clone(), band(0.05)).unwrap();
        router.kill_backend(0);
        router.kill_backend(1);
        match router.screen(1, &[golden]) {
            Err(RouterError::AllBackendsFailed { key, detail }) => {
                assert_eq!(key, 1);
                assert!(detail.contains("local-0") && detail.contains("local-1"), "{detail}");
            }
            other => panic!("expected AllBackendsFailed, got {other:?}"),
        }
    }

    #[test]
    fn characterize_replicates_and_matches_the_engine_fingerprint() {
        let setup = TestSetup::paper_default().unwrap().with_sample_rate(1e6).unwrap();
        let reference = BiquadParams::paper_default();
        let router = fleet(3, 2);
        let key = router.characterize(&setup, &reference, band(0.03)).unwrap();
        assert_eq!(key, dsig_engine::golden_fingerprint(&setup, &reference));
        // The golden scores its own noiseless capture cleanly through TCP-free
        // routing, and survives the owner dying thanks to the replica.
        let observed = setup.signature_of(&reference, 5).unwrap();
        assert_eq!(router.screen_one(key, &observed).unwrap().ndf, 0.0);
        router.kill_backend(router.rank(key)[0]);
        assert_eq!(router.screen_one(key, &observed).unwrap().ndf, 0.0);
    }
}
