//! The in-process router front: the same routing core the TCP listener
//! serves, without any socket — and a constructor that spawns a whole
//! backend fleet in-process (via [`ServeHandle::spawn`]) for tests,
//! benchmarks and single-process deployments.
//!
//! Backends are addressed **by label** (`local-<id>` for in-process
//! backends, `host:port` for TCP ones). Labels stay valid across
//! membership changes; the index-based methods are deprecated shims that
//! resolve against the current membership order and go stale the moment a
//! backend joins or leaves.

use std::sync::Arc;

use cut_filters::BiquadParams;
use dsig_core::{AcceptanceBand, Signature, TestSetup};
use dsig_engine::{RemoteScore, RemoteScorer};
use dsig_obs::{EventLog, HealthReport, MetricsSnapshot, TraceLog};
use dsig_serve::{
    FleetAdmin, FleetRoster, GoldenRecord, GoldenStore, ObsScrape, RetestRequest, RetestScore, ScoreResult, Screen,
    ServeConfig, ServeHandle,
};

use crate::backend::Backend;
use crate::error::Result;
use crate::router::{RouterConfig, RouterCore};
use crate::store::RouterStore;

/// An in-process client of a routing core. Cloning is cheap; each clone can
/// be used from its own thread.
#[derive(Clone)]
pub struct RouterHandle {
    core: Arc<RouterCore>,
}

impl RouterHandle {
    pub(crate) fn from_core(core: Arc<RouterCore>) -> Self {
        RouterHandle { core }
    }

    /// Spawns `backends` in-process scoring backends — each its own
    /// [`GoldenStore`] and shard set ([`ServeHandle::spawn`]), no TCP
    /// anywhere — and fronts them with a router. This is the fixture the
    /// loopback tests and the `router_throughput` bench build their fleets
    /// with.
    ///
    /// # Errors
    /// Returns [`crate::RouterError::NoBackends`] for a zero backend count.
    pub fn spawn(backends: usize, per_backend: ServeConfig, store: RouterStore, config: RouterConfig) -> Result<Self> {
        let fleet: Vec<Backend> = (0..backends)
            .map(|id| {
                Backend::local(
                    id as u64,
                    ServeHandle::spawn(Arc::new(GoldenStore::new()), per_backend.clone()),
                )
            })
            .collect();
        Self::with_backends(fleet, store, config)
    }

    /// Fronts an explicit backend set (mix TCP and in-process freely) with a
    /// routing core.
    ///
    /// # Errors
    /// Returns [`crate::RouterError::NoBackends`] for an empty set and an
    /// invalid-config error for duplicate rendezvous ids.
    pub fn with_backends(backends: Vec<Backend>, store: RouterStore, config: RouterConfig) -> Result<Self> {
        Ok(RouterHandle {
            core: Arc::new(RouterCore::new(backends, store, config)?),
        })
    }

    /// The router's authoritative golden store.
    pub fn store(&self) -> &RouterStore {
        self.core.store()
    }

    /// Number of members (active, draining or backed off) in the live fleet.
    pub fn backend_count(&self) -> usize {
        self.core.backend_count()
    }

    /// The live membership epoch: starts at 1, bumped on every
    /// join/leave/drain. The same value rides in `DSHR` health reports and
    /// the `DSAQ` roster.
    pub fn epoch(&self) -> u64 {
        self.core.epoch()
    }

    /// Member labels in membership order (`local-<id>` for in-process
    /// backends, `host:port` for TCP ones) — the stable addressing
    /// vocabulary of the fleet.
    pub fn backend_labels(&self) -> Vec<String> {
        self.core.backend_labels()
    }

    /// The rendezvous ranking of a fingerprint as member labels, owner
    /// first.
    pub fn rank_labels(&self, key: u64) -> Vec<String> {
        self.core.rank_labels(key)
    }

    /// The rendezvous ranking of a fingerprint as member **indices** into
    /// the current membership order.
    #[deprecated(since = "0.2.0", note = "indices go stale under live membership; use rank_labels")]
    pub fn rank(&self, key: u64) -> Vec<usize> {
        self.core.rank(key)
    }

    /// Kills the member at `label` (see [`Backend::kill`]): subsequent
    /// requests routed to it fail and fail over to its replicas.
    ///
    /// # Errors
    /// Rejects an unknown label.
    pub fn kill(&self, label: &str) -> Result<()> {
        self.core.kill_by_label(label)
    }

    /// Revives the member at `label` (see [`Backend::revive`]): undoes a
    /// kill and clears its failure record, so the next forward (and the
    /// next health check) sees it up immediately.
    ///
    /// # Errors
    /// Rejects an unknown label.
    pub fn revive(&self, label: &str) -> Result<()> {
        self.core.revive_by_label(label)
    }

    /// Whether the member at `label`'s health record currently marks it
    /// down.
    ///
    /// # Errors
    /// Rejects an unknown label.
    pub fn backend_is_down(&self, label: &str) -> Result<bool> {
        self.core.down_by_label(label)
    }

    /// Resolves the label of the member at `index` in membership order —
    /// the bridge the deprecated index shims use.
    fn label_at(&self, index: usize) -> String {
        self.core.backend_labels()[index].clone()
    }

    /// Kills backend `index` (membership order).
    ///
    /// # Panics
    /// Panics when `index` is out of range.
    #[deprecated(since = "0.2.0", note = "indices go stale under live membership; use kill(label)")]
    pub fn kill_backend(&self, index: usize) {
        self.core
            .kill_by_label(&self.label_at(index))
            .expect("label resolved from the live membership");
    }

    /// Revives backend `index` (membership order).
    ///
    /// # Panics
    /// Panics when `index` is out of range.
    #[deprecated(since = "0.2.0", note = "indices go stale under live membership; use revive(label)")]
    pub fn revive_backend(&self, index: usize) {
        self.core
            .revive_by_label(&self.label_at(index))
            .expect("label resolved from the live membership");
    }

    /// Whether backend `index` (membership order) is currently marked down.
    ///
    /// # Panics
    /// Panics when `index` is out of range.
    #[deprecated(
        since = "0.2.0",
        note = "indices go stale under live membership; use backend_is_down(label)"
    )]
    pub fn backend_down(&self, index: usize) -> bool {
        self.core
            .down_by_label(&self.label_at(index))
            .expect("label resolved from the live membership")
    }

    /// Admits an explicit [`Backend`] (TCP or in-process) into the live
    /// fleet: the goldens it now owns are migrated onto it **before** the
    /// membership flips, so it never sees a request it cannot answer.
    /// Idempotent by label; joining a draining member reactivates it.
    ///
    /// # Errors
    /// Rejects a rendezvous-id collision and an unreachable backend (the
    /// migration must land).
    pub fn join(&self, backend: Backend) -> Result<FleetRoster> {
        self.core.join_backend(backend)
    }

    /// The wire form of [`RouterHandle::join`]: an existing member is
    /// reactivated by label, a new one must be a dialable `host:port`
    /// (joined as a TCP backend).
    ///
    /// # Errors
    /// As for [`RouterHandle::join`], plus unparseable labels.
    pub fn fleet_join(&self, label: &str) -> Result<FleetRoster> {
        self.core.join_by_label(label)
    }

    /// Removes the member at `label`, re-replicating its goldens to the
    /// surviving owners first. Idempotent: leaving an unknown member is an
    /// acknowledged no-op.
    ///
    /// # Errors
    /// Rejects removing the last member.
    pub fn fleet_leave(&self, label: &str) -> Result<FleetRoster> {
        self.core.leave_backend(label)
    }

    /// Marks the member at `label` draining: new work steers away, its
    /// goldens re-replicate, and it stays ranked as a failover last resort.
    /// Idempotent on a draining member.
    ///
    /// # Errors
    /// Rejects an unknown label.
    pub fn fleet_drain(&self, label: &str) -> Result<FleetRoster> {
        self.core.drain_backend(label)
    }

    /// The live roster: epoch plus every member's label, id and state.
    pub fn fleet_roster(&self) -> FleetRoster {
        self.core.roster()
    }

    /// Snapshots the routing tier's metrics (per-backend forward/failover/
    /// retry counters, backoff gauge, fan-out latency, refresh-on-miss,
    /// membership epoch) — the in-process equivalent of a `DSMX` scrape.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.core.metrics()
    }

    /// Drains the routing tier's buffered trace spans — the in-process
    /// equivalent of a `DSTX` scrape. Each span is exported at most once.
    pub fn traces(&self) -> TraceLog {
        self.core.traces()
    }

    /// Aggregated fleet metrics — the in-process equivalent of a `DSFM`
    /// scrape: every backend's snapshot under a `backend.<label>.` prefix,
    /// the cross-backend rollup under `fleet.`, and the router's own
    /// registry unprefixed. Unreachable backends are skipped, never fatal.
    pub fn fleet_metrics(&self) -> MetricsSnapshot {
        self.core.fleet_metrics()
    }

    /// Aggregated fleet trace drain — the in-process equivalent of a `DSFT`
    /// scrape: every reachable backend's spans plus the router's own.
    /// Consuming: each span is exported at most once fleet-wide.
    pub fn fleet_traces(&self) -> TraceLog {
        self.core.fleet_traces()
    }

    /// Drains the fleet's buffered events — the in-process equivalent of a
    /// `DSEX` scrape at the router: every reachable backend's events plus
    /// the router's own (backend backoff/recovery and membership
    /// transitions, refresh-on-miss records). Consuming: each record is
    /// exported at most once fleet-wide.
    pub fn events(&self) -> EventLog {
        self.core.events()
    }

    /// Scrapes the fleet and verdicts it against the configured
    /// [`dsig_obs::SloPolicy`] — the in-process equivalent of a `DSHC` health
    /// check. A backend counts as down when its health record backs it off
    /// or its scrape fails; the report carries the live membership epoch.
    pub fn health(&self) -> HealthReport {
        self.core.health()
    }

    /// Characterizes `(setup, reference)` into the router store and pushes
    /// the golden to its owning backends; returns the fingerprint clients
    /// screen with.
    ///
    /// # Errors
    /// Propagates capture errors; fails if no backend accepts the push.
    pub fn characterize(&self, setup: &TestSetup, reference: &BiquadParams, band: AcceptanceBand) -> Result<u64> {
        self.core.characterize(setup, reference, band)
    }

    /// Stores an already-characterized golden and replicates it to its
    /// owning backends.
    ///
    /// # Errors
    /// Fails if no backend accepts the push.
    pub fn push_golden(&self, key: u64, golden: Signature, band: AcceptanceBand) -> Result<()> {
        self.core.push_golden(key, golden, band)
    }

    /// Resolves a golden record: the router store first, then readback from
    /// the owning backends (caching it locally).
    ///
    /// # Errors
    /// Returns [`crate::RouterError::UnknownGolden`] when nobody holds it.
    pub fn golden(&self, key: u64) -> Result<Arc<GoldenRecord>> {
        self.core.golden(key)
    }

    /// Scores a batch against the golden under `golden_key`, routed to the
    /// owning backend (with deterministic failover) and split at the
    /// configured sub-batch boundary — bit-identical to direct
    /// [`dsig_core::TestFlow`] scoring for every backend count and split.
    ///
    /// # Errors
    /// Returns [`crate::RouterError::UnknownGolden`] for an unknown
    /// fingerprint and [`crate::RouterError::AllBackendsFailed`] when the
    /// whole failover chain is down.
    pub fn screen(&self, golden_key: u64, signatures: &[Signature]) -> Result<Vec<ScoreResult>> {
        self.core.screen(golden_key, signatures)
    }

    /// Scores a single signature (a one-element [`RouterHandle::screen`]).
    ///
    /// # Errors
    /// As for [`RouterHandle::screen`].
    pub fn screen_one(&self, golden_key: u64, signature: &Signature) -> Result<ScoreResult> {
        Ok(self.screen(golden_key, std::slice::from_ref(signature))?[0])
    }

    /// Scores a multi-golden batch: split into per-backend sub-batches by
    /// rendezvous ownership, forwarded concurrently, reassembled in request
    /// order.
    ///
    /// # Errors
    /// As for [`RouterHandle::screen`].
    pub fn screen_multi(&self, items: &[(u64, Signature)]) -> Result<Vec<ScoreResult>> {
        self.core.screen_multi(items)
    }

    /// Screens an adaptive-retest batch (`DSRT`): routed to the golden's
    /// owning backend (with the same deterministic failover chain as
    /// [`RouterHandle::screen`]), whose shards rerun marginal devices with
    /// averaged repeats before verdicting.
    ///
    /// # Errors
    /// As for [`RouterHandle::screen`].
    pub fn screen_retest(&self, request: &RetestRequest) -> Result<Vec<RetestScore>> {
        self.core.screen_retest(request)
    }
}

impl Screen for RouterHandle {
    type Error = crate::RouterError;

    fn screen(&mut self, golden_key: u64, signatures: &[Signature]) -> Result<Vec<ScoreResult>> {
        RouterHandle::screen(self, golden_key, signatures)
    }

    fn screen_one(&mut self, golden_key: u64, signature: &Signature) -> Result<ScoreResult> {
        RouterHandle::screen_one(self, golden_key, signature)
    }

    fn screen_multi(&mut self, items: &[(u64, Signature)]) -> Result<Vec<ScoreResult>> {
        RouterHandle::screen_multi(self, items)
    }

    fn screen_retest(&mut self, request: &RetestRequest) -> Result<Vec<RetestScore>> {
        RouterHandle::screen_retest(self, request)
    }
}

impl ObsScrape for RouterHandle {
    type Error = crate::RouterError;

    fn metrics(&mut self) -> Result<MetricsSnapshot> {
        Ok(RouterHandle::metrics(self))
    }

    fn traces(&mut self) -> Result<TraceLog> {
        Ok(RouterHandle::traces(self))
    }

    fn events(&mut self) -> Result<EventLog> {
        Ok(RouterHandle::events(self))
    }

    fn fleet_metrics(&mut self) -> Result<MetricsSnapshot> {
        Ok(RouterHandle::fleet_metrics(self))
    }

    fn fleet_traces(&mut self) -> Result<TraceLog> {
        Ok(RouterHandle::fleet_traces(self))
    }

    fn health(&mut self) -> Result<HealthReport> {
        Ok(RouterHandle::health(self))
    }
}

impl FleetAdmin for RouterHandle {
    type Error = crate::RouterError;

    fn fleet_join(&mut self, label: &str) -> Result<FleetRoster> {
        RouterHandle::fleet_join(self, label)
    }

    fn fleet_leave(&mut self, label: &str) -> Result<FleetRoster> {
        RouterHandle::fleet_leave(self, label)
    }

    fn fleet_drain(&mut self, label: &str) -> Result<FleetRoster> {
        RouterHandle::fleet_drain(self, label)
    }

    fn fleet_roster(&mut self) -> Result<FleetRoster> {
        Ok(RouterHandle::fleet_roster(self))
    }
}

impl RemoteScorer for RouterHandle {
    fn screen_remote(&self, golden_key: u64, signatures: &[Signature]) -> dsig_core::Result<Vec<RemoteScore>> {
        RouterHandle::screen(self, golden_key, signatures)
            // The score conversion is dsig-serve's `From<ScoreResult>`.
            .map(|scores| scores.into_iter().map(Into::into).collect())
            .map_err(crate::RouterError::into_dsig)
    }

    fn retest_remote(
        &self,
        golden_key: u64,
        policy: &dsig_core::RetestPolicy,
        devices: &[dsig_engine::RetestDevice],
    ) -> dsig_core::Result<Vec<dsig_engine::RemoteRetest>> {
        RouterHandle::screen_retest(
            self,
            &dsig_serve::server::retest_request_of(golden_key, policy, devices),
        )
        .map(|scores| scores.into_iter().map(Into::into).collect())
        .map_err(crate::RouterError::into_dsig)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RouterError;
    use dsig_core::{SignatureEntry, TestOutcome, ZoneCode};
    use dsig_serve::BackendState;

    fn sig(codes: &[(u32, f64)]) -> Signature {
        Signature::new(
            codes
                .iter()
                .map(|&(c, d)| SignatureEntry {
                    code: ZoneCode(c),
                    duration: d,
                })
                .collect(),
        )
        .unwrap()
    }

    fn band(threshold: f64) -> AcceptanceBand {
        AcceptanceBand::new(threshold).unwrap()
    }

    fn fleet(backends: usize, replicas: usize) -> RouterHandle {
        RouterHandle::spawn(
            backends,
            ServeConfig::with_shards(1),
            RouterStore::new(),
            RouterConfig {
                replicas,
                sub_batch: 3, // force sub-batch splits in tests
                ..RouterConfig::default()
            },
        )
        .unwrap()
    }

    fn local_backend(id: u64) -> Backend {
        Backend::local(
            id,
            ServeHandle::spawn(Arc::new(GoldenStore::new()), ServeConfig::with_shards(1)),
        )
    }

    #[test]
    fn empty_fleets_and_duplicate_ids_are_rejected() {
        assert!(matches!(
            RouterHandle::spawn(
                0,
                ServeConfig::with_shards(1),
                RouterStore::new(),
                RouterConfig::default()
            ),
            Err(RouterError::NoBackends)
        ));
        let dup = vec![local_backend(1), local_backend(1)];
        assert!(RouterHandle::with_backends(dup, RouterStore::new(), RouterConfig::default()).is_err());
    }

    #[test]
    fn pushed_goldens_land_on_the_owner_and_screen_correctly() {
        let router = fleet(4, 2);
        let golden = sig(&[(1, 100e-6), (3, 100e-6)]);
        router.push_golden(0xC0FFEE, golden.clone(), band(0.05)).unwrap();
        assert_eq!(router.store().len(), 1);
        // Screening the golden itself through the router is a clean pass.
        let results = router
            .screen(0xC0FFEE, &[golden.clone(), sig(&[(1, 100e-6), (7, 100e-6)])])
            .unwrap();
        assert_eq!(results[0].ndf, 0.0);
        assert_eq!(results[0].outcome, TestOutcome::Pass);
        assert!(results[1].ndf > 0.0);
        // Readback resolves from the store; unknown keys are reported as such.
        assert_eq!(router.golden(0xC0FFEE).unwrap().golden, golden);
        assert!(matches!(router.golden(0xBAD), Err(RouterError::UnknownGolden(0xBAD))));
        assert!(matches!(
            router.screen(0xBAD, &[golden]),
            Err(RouterError::UnknownGolden(0xBAD))
        ));
    }

    #[test]
    fn failover_refreshes_the_golden_and_keeps_verdicts_identical() {
        let router = fleet(3, 1); // a single copy: failover must refresh
        let golden = sig(&[(1, 100e-6), (3, 100e-6)]);
        router.push_golden(7, golden.clone(), band(0.05)).unwrap();
        let observed = vec![
            golden.clone(),
            sig(&[(1, 100e-6), (3, 90e-6), (7, 10e-6)]),
            sig(&[(5, 200e-6)]),
        ];
        let before = router.screen(7, &observed).unwrap();
        // Kill the owner: the next screen fails over to the replica, which
        // misses the golden and is refreshed from the router store mid-call.
        let owner = router.rank_labels(7)[0].clone();
        router.kill(&owner).unwrap();
        let after = router.screen(7, &observed).unwrap();
        assert_eq!(after, before, "failover must not change a single verdict");
        assert!(
            router.backend_is_down(&owner).unwrap(),
            "the dead owner must be marked down"
        );
        // The router survives repeated screens with the owner gone.
        assert_eq!(router.screen(7, &observed).unwrap(), before);
    }

    #[test]
    fn multi_screen_reassembles_across_backends_in_request_order() {
        let router = fleet(4, 2);
        // Several goldens with distinguishable signatures.
        let keys: Vec<u64> = (0..5).map(|k| 0x1000 + k).collect();
        for (i, &key) in keys.iter().enumerate() {
            router
                .push_golden(key, sig(&[(1, 100e-6), (i as u32 + 2, 100e-6)]), band(0.05))
                .unwrap();
        }
        // Interleaved items: each scores its own golden cleanly, a shifted
        // variant of the next one dirtily.
        let items: Vec<(u64, Signature)> = (0..30)
            .map(|n| {
                let key = keys[n % keys.len()];
                (key, sig(&[(1, 100e-6), ((n % keys.len()) as u32 + 2, 100e-6)]))
            })
            .collect();
        let results = router.screen_multi(&items).unwrap();
        assert_eq!(results.len(), items.len());
        for (n, result) in results.iter().enumerate() {
            assert_eq!(result.ndf, 0.0, "item {n} must match its own golden");
        }
        // Bit-identical to screening each key separately.
        for (item, result) in items.iter().zip(&results) {
            let single = router.screen_one(item.0, &item.1).unwrap();
            assert_eq!(single, *result);
        }
        // Unknown key anywhere fails the whole multi-batch deterministically.
        let mut bad = items;
        bad[4].0 = 0xFFFF;
        assert!(matches!(
            router.screen_multi(&bad),
            Err(RouterError::UnknownGolden(0xFFFF))
        ));
        assert!(router.screen_multi(&[]).unwrap().is_empty());
    }

    #[test]
    fn retest_requests_route_with_failover_and_match_direct_serving() {
        use dsig_core::RetestPolicy;
        use dsig_serve::RetestItem;

        let router = fleet(3, 1); // one copy: failover must refresh
        let golden = sig(&[(1, 100e-6), (3, 100e-6)]);
        router.push_golden(0xAB, golden.clone(), band(0.05)).unwrap();
        // A marginal device (one short zone rewrite) plus a clean one; the
        // repeats confirm the rewrite, so the marginal device fails.
        let marginal = sig(&[(1, 100e-6), (3, 90e-6), (7, 10e-6)]);
        let request = RetestRequest {
            golden_key: 0xAB,
            policy: RetestPolicy::new(0.03, vec![2]).unwrap(),
            items: vec![
                RetestItem {
                    initial: golden.clone(),
                    repeats: vec![],
                },
                RetestItem {
                    initial: marginal.clone(),
                    repeats: vec![marginal.clone(), marginal.clone()],
                },
            ],
        };
        // Reference: a standalone serve handle holding the same golden.
        let direct = ServeHandle::spawn(Arc::new(GoldenStore::new()), ServeConfig::with_shards(2));
        direct.push_golden(0xAB, golden.clone(), band(0.05));
        let expected = direct.screen_retest(&request).unwrap();

        let routed = router.screen_retest(&request).unwrap();
        assert_eq!(routed, expected, "routed retest must equal direct serving");
        assert!(!routed[0].marginal);
        assert!(routed[1].marginal);
        assert_eq!(routed[1].repeats_used, 2);

        // Unknown fingerprints are reported as such (every live backend must
        // answer "unknown"), and an empty batch still routes — the error
        // surface matches plain screening.
        let unknown = RetestRequest {
            golden_key: 0xBAD,
            ..request.clone()
        };
        assert!(matches!(
            router.screen_retest(&unknown),
            Err(RouterError::UnknownGolden(0xBAD))
        ));
        let empty = RetestRequest {
            golden_key: 0xAB,
            policy: request.policy.clone(),
            items: vec![],
        };
        assert!(router.screen_retest(&empty).unwrap().is_empty());

        // Kill the owner: the retest fails over (refreshing the golden from
        // the router store) without changing a single verdict.
        let owner = router.rank_labels(0xAB)[0].clone();
        router.kill(&owner).unwrap();
        assert_eq!(router.screen_retest(&request).unwrap(), expected);
        assert!(router.backend_is_down(&owner).unwrap());
    }

    #[test]
    fn metrics_scrape_tracks_forwards_failovers_and_refreshes() {
        let router = fleet(3, 1); // one copy: failover must refresh
        let golden = sig(&[(1, 100e-6), (3, 100e-6)]);
        router.push_golden(0x0B5, golden.clone(), band(0.05)).unwrap();
        // Fleet metrics share the process-global registry (other tests bump
        // the same counters), so everything is asserted as before/after
        // deltas with >= — counters are monotonic.
        let sum = |snapshot: &MetricsSnapshot, what: &str| -> u64 {
            (0..3)
                .map(|i| {
                    snapshot
                        .counter(&format!("router.backend.local-{i}.{what}"))
                        .unwrap_or(0)
                })
                .sum()
        };
        let fanout = |snapshot: &MetricsSnapshot| snapshot.histogram("router.fanout_us").map_or(0, |h| h.count);
        let before = router.metrics();

        router.screen(0x0B5, std::slice::from_ref(&golden)).unwrap();
        // Kill the owner: the next screen retries it, fails over to the next
        // ranked backend and refreshes the golden there mid-request.
        router.kill(&router.rank_labels(0x0B5)[0]).unwrap();
        router.screen(0x0B5, std::slice::from_ref(&golden)).unwrap();

        let after = router.metrics();
        assert!(sum(&after, "forwards") >= sum(&before, "forwards") + 2);
        assert!(sum(&after, "retries") > sum(&before, "retries"));
        assert!(sum(&after, "failovers") > sum(&before, "failovers"));
        assert!(
            after.counter("router.refresh_on_miss").unwrap() > before.counter("router.refresh_on_miss").unwrap_or(0)
        );
        assert!(fanout(&after) >= fanout(&before) + 2);
        assert!(after.gauge("router.backoff_backends").is_some());
        assert_eq!(after.gauge("router.membership_epoch"), Some(1.0));
    }

    #[test]
    fn fleet_scrape_prefixes_backends_rolls_up_and_health_tracks_kills() {
        // Isolated per-backend registries make the health verdict
        // deterministic even though the router core itself registers in the
        // process-global registry (the health sample only reads the `fleet.`
        // rollup, which is built from the backend snapshots).
        let fleet: Vec<Backend> = (0..3)
            .map(|id| {
                Backend::local(
                    id,
                    ServeHandle::spawn_in(
                        Arc::new(GoldenStore::new()),
                        ServeConfig::with_shards(1),
                        dsig_obs::Registry::new(),
                    ),
                )
            })
            .collect();
        let router = RouterHandle::with_backends(fleet, RouterStore::new(), RouterConfig::default()).unwrap();
        let golden = sig(&[(1, 100e-6), (3, 100e-6)]);
        router.push_golden(0xF7EE7, golden.clone(), band(0.05)).unwrap();
        router.screen(0xF7EE7, std::slice::from_ref(&golden)).unwrap();

        // Every backend appears under its own prefix, and the rollup sums
        // the per-backend counters exactly.
        let snapshot = router.fleet_metrics();
        let scored: Vec<u64> = (0..3)
            .map(|i| {
                snapshot
                    .counter(&format!("backend.local-{i}.serve.signatures_scored"))
                    .unwrap_or_else(|| panic!("backend local-{i} missing from the fleet scrape"))
            })
            .collect();
        assert_eq!(
            snapshot.counter("fleet.serve.signatures_scored").unwrap(),
            scored.iter().sum::<u64>(),
            "the fleet rollup must sum the per-backend counters"
        );
        assert!(
            scored.iter().sum::<u64>() >= 1,
            "the routed screen was scored somewhere"
        );
        // The router's own registry rides along unprefixed.
        assert!(snapshot.counter("router.refresh_on_miss").is_some());

        // PASS with everyone up; DEGRADED after one kill; FAIL when the
        // whole fleet is gone; PASS again once everyone is revived. The
        // health report carries the membership epoch throughout.
        let healthy = router.health();
        assert_eq!(healthy.status, dsig_obs::HealthStatus::Pass);
        assert_eq!(healthy.epoch, router.epoch());
        router.kill("local-0").unwrap();
        let degraded = router.health();
        assert_eq!(degraded.status, dsig_obs::HealthStatus::Degraded);
        assert_eq!((degraded.backed_off, degraded.backends), (1, 3));
        assert!(!degraded.findings.is_empty());
        router.kill("local-1").unwrap();
        router.kill("local-2").unwrap();
        assert_eq!(router.health().status, dsig_obs::HealthStatus::Fail);
        for label in router.backend_labels() {
            router.revive(&label).unwrap();
        }
        let recovered = router.health();
        assert_eq!(
            recovered.status,
            dsig_obs::HealthStatus::Pass,
            "{:?}",
            recovered.findings
        );

        // A dead backend is skipped by the scrape, not fatal.
        router.kill("local-2").unwrap();
        let partial = router.fleet_metrics();
        assert!(partial.counter("backend.local-2.serve.signatures_scored").is_none());
        assert!(partial.counter("backend.local-0.serve.signatures_scored").is_some());
    }

    #[test]
    fn backend_transitions_and_refreshes_surface_as_events() {
        let router = fleet(3, 1); // one copy: failover must refresh
        let golden = sig(&[(1, 100e-6), (3, 100e-6)]);
        router.push_golden(0xE7E47, golden.clone(), band(0.05)).unwrap();
        router.screen(0xE7E47, std::slice::from_ref(&golden)).unwrap();
        // Kill the owner: the next screen starts its failure streak and
        // refreshes the golden on the failover target.
        let owner = router.rank_labels(0xE7E47)[0].clone();
        router.kill(&owner).unwrap();
        router.screen(0xE7E47, std::slice::from_ref(&golden)).unwrap();
        router.revive(&owner).unwrap();

        // The event sink is process-global (other tests may interleave), so
        // assert only that this test's transitions are present.
        let names: Vec<String> = router.events().events.into_iter().map(|event| event.name).collect();
        for expected in ["backend.backed_off", "backend.recovered", "golden.refresh_on_miss"] {
            assert!(
                names.iter().any(|name| name == expected),
                "missing {expected} in {names:?}"
            );
        }
        // Fleet traces drain without error even with spans buffered by other
        // tests; a second drain of a quiet fleet yields nothing new for the
        // spans this test produced.
        let _ = router.fleet_traces();
    }

    #[test]
    fn all_backends_dead_is_reported_with_detail() {
        let router = fleet(2, 2);
        let golden = sig(&[(1, 100e-6)]);
        router.push_golden(1, golden.clone(), band(0.05)).unwrap();
        router.kill("local-0").unwrap();
        router.kill("local-1").unwrap();
        match router.screen(1, &[golden]) {
            Err(RouterError::AllBackendsFailed { key, detail }) => {
                assert_eq!(key, 1);
                assert!(detail.contains("local-0") && detail.contains("local-1"), "{detail}");
            }
            other => panic!("expected AllBackendsFailed, got {other:?}"),
        }
    }

    #[test]
    fn characterize_replicates_and_matches_the_engine_fingerprint() {
        let setup = TestSetup::paper_default().unwrap().with_sample_rate(1e6).unwrap();
        let reference = BiquadParams::paper_default();
        let router = fleet(3, 2);
        let key = router.characterize(&setup, &reference, band(0.03)).unwrap();
        assert_eq!(key, dsig_engine::golden_fingerprint(&setup, &reference));
        // The golden scores its own noiseless capture cleanly through TCP-free
        // routing, and survives the owner dying thanks to the replica.
        let observed = setup.signature_of(&reference, 5).unwrap();
        assert_eq!(router.screen_one(key, &observed).unwrap().ndf, 0.0);
        router.kill(&router.rank_labels(key)[0]).unwrap();
        assert_eq!(router.screen_one(key, &observed).unwrap().ndf, 0.0);
    }

    #[test]
    fn unknown_labels_are_rejected_and_index_shims_still_resolve() {
        let router = fleet(2, 2);
        assert!(router.kill("no-such-backend").is_err());
        assert!(router.revive("no-such-backend").is_err());
        assert!(router.backend_is_down("no-such-backend").is_err());
        let golden = sig(&[(1, 100e-6)]);
        router.push_golden(0x51, golden.clone(), band(0.05)).unwrap();
        // The deprecated index addressing keeps working for one release,
        // resolving through the membership order.
        #[allow(deprecated)]
        {
            assert_eq!(router.rank(0x51), {
                let labels = router.backend_labels();
                router
                    .rank_labels(0x51)
                    .iter()
                    .map(|label| labels.iter().position(|l| l == label).unwrap())
                    .collect::<Vec<_>>()
            });
            // Kill both members; a failed screen arms the health records the
            // index shims then read (a bare kill alone does not).
            router.kill_backend(0);
            router.kill_backend(1);
            assert!(router.screen(0x51, std::slice::from_ref(&golden)).is_err());
            assert!(router.backend_down(0));
            assert!(router.backend_down(1));
            router.revive_backend(0);
            router.revive_backend(1);
            assert!(!router.backend_down(0));
            assert!(!router.backend_down(1));
        }
    }

    #[test]
    fn join_migrates_goldens_and_bumps_the_epoch() {
        let router = fleet(2, 1); // single copy: migration is observable
        let setup_keys: Vec<u64> = (0..24).collect();
        for &key in &setup_keys {
            router
                .push_golden(key, sig(&[(1, 100e-6), (key as u32 + 2, 50e-6)]), band(0.05))
                .unwrap();
        }
        assert_eq!(router.epoch(), 1);

        let roster = router.join(local_backend(7)).unwrap();
        assert_eq!(roster.epoch, 2);
        assert_eq!(router.epoch(), 2);
        assert_eq!(router.backend_count(), 3);
        assert_eq!(roster.entries.len(), 3);
        assert!(roster.entries.iter().all(|entry| entry.state == BackendState::Active));

        // The mover set is exactly the keys the newcomer now owns a copy of:
        // every one must have been migrated, so killing BOTH old members
        // still screens the newcomer's keys without a store refresh (the
        // newcomer answers them from its own migrated store).
        let moved: Vec<u64> = setup_keys
            .iter()
            .copied()
            .filter(|&key| router.rank_labels(key)[0] == "local-7")
            .collect();
        assert!(!moved.is_empty(), "with 24 keys some must re-home onto the joiner");
        for &key in &moved {
            let observed = sig(&[(1, 100e-6), (key as u32 + 2, 50e-6)]);
            assert_eq!(router.screen_one(key, &observed).unwrap().ndf, 0.0);
        }

        // Idempotent: joining the same label again is a no-op, same epoch.
        let again = router.join(local_backend(7)).unwrap();
        assert_eq!(again.epoch, 2);
        assert_eq!(router.backend_count(), 3);

        // A label that is neither a member nor a dialable address is
        // rejected by the wire-form join.
        assert!(router.fleet_join("not-an-address").is_err());

        // The joined/epoch transitions surface as events.
        let names: Vec<String> = router.events().events.into_iter().map(|event| event.name).collect();
        assert!(names.iter().any(|name| name == "backend.joined"), "{names:?}");
    }

    #[test]
    fn leave_rehomes_goldens_and_rejects_the_last_member() {
        let router = fleet(3, 1); // single copy: the leaver's keys must re-home
        let keys: Vec<u64> = (100..130).collect();
        for &key in &keys {
            router
                .push_golden(key, sig(&[(1, 100e-6), ((key % 31) as u32 + 2, 50e-6)]), band(0.05))
                .unwrap();
        }
        let leaver = "local-1";
        let owned: Vec<u64> = keys
            .iter()
            .copied()
            .filter(|&key| router.rank_labels(key)[0] == leaver)
            .collect();
        assert!(!owned.is_empty(), "with 30 keys some must live on the leaver");

        let roster = router.fleet_leave(leaver).unwrap();
        assert_eq!(roster.epoch, 2);
        assert_eq!(router.backend_count(), 2);
        assert!(roster.entries.iter().all(|entry| entry.label != leaver));

        // The leaver's keys were re-homed before removal: screening them
        // works without any refresh-on-miss (assert via a clean screen).
        for &key in &owned {
            let observed = sig(&[(1, 100e-6), ((key % 31) as u32 + 2, 50e-6)]);
            assert_eq!(router.screen_one(key, &observed).unwrap().ndf, 0.0);
        }

        // Idempotent: leaving again is an acknowledged no-op, same epoch.
        assert_eq!(router.fleet_leave(leaver).unwrap().epoch, 2);

        // The last member can never leave.
        router.fleet_leave("local-0").unwrap();
        assert!(router.fleet_leave("local-2").is_err());
        assert_eq!(router.backend_count(), 1);

        let names: Vec<String> = router.events().events.into_iter().map(|event| event.name).collect();
        assert!(names.iter().any(|name| name == "backend.left"), "{names:?}");
    }

    #[test]
    fn drain_steers_work_away_and_join_reactivates() {
        let router = fleet(3, 2);
        let keys: Vec<u64> = (200..220).collect();
        for &key in &keys {
            router
                .push_golden(key, sig(&[(1, 100e-6), ((key % 17) as u32 + 2, 50e-6)]), band(0.05))
                .unwrap();
        }
        let drained = "local-2";
        let roster = router.fleet_drain(drained).unwrap();
        assert_eq!(roster.epoch, 2);
        let state_of = |roster: &FleetRoster, label: &str| {
            roster
                .entries
                .iter()
                .find(|entry| entry.label == label)
                .map(|entry| entry.state)
                .unwrap()
        };
        assert_eq!(state_of(&roster, drained), BackendState::Draining);

        // New work steers away from the draining member: with it killed
        // outright, every key still screens cleanly off the non-draining
        // members (the drain re-replicated its copies to them).
        router.kill(drained).unwrap();
        for &key in &keys {
            let observed = sig(&[(1, 100e-6), ((key % 17) as u32 + 2, 50e-6)]);
            assert_eq!(router.screen_one(key, &observed).unwrap().ndf, 0.0);
        }
        router.revive(drained).unwrap();

        // Draining a draining member is a no-op; draining a stranger is an
        // error.
        assert_eq!(router.fleet_drain(drained).unwrap().epoch, 2);
        assert!(router.fleet_drain("no-such-backend").is_err());

        // A join by label reactivates the draining member.
        let rejoined = router.fleet_join(drained).unwrap();
        assert_eq!(rejoined.epoch, 3);
        assert_eq!(state_of(&rejoined, drained), BackendState::Active);

        let names: Vec<String> = router.events().events.into_iter().map(|event| event.name).collect();
        assert!(names.iter().any(|name| name == "backend.draining"), "{names:?}");
        assert!(names.iter().any(|name| name == "backend.joined"), "{names:?}");
    }

    #[test]
    fn saturated_failure_streak_heals_replicas_once() {
        use crate::backend::HealthConfig;
        use std::time::Duration;

        // A tiny backoff cap so the very first failure saturates the streak
        // and arms the healing latch.
        let config = RouterConfig {
            replicas: 1, // a single copy: healing must create the second one
            sub_batch: 3,
            health: HealthConfig {
                base_backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(1),
            },
            ..RouterConfig::default()
        };
        let router = RouterHandle::spawn(3, ServeConfig::with_shards(1), RouterStore::new(), config).unwrap();
        let keys: Vec<u64> = (300..324).collect();
        for &key in &keys {
            router
                .push_golden(key, sig(&[(1, 100e-6), ((key % 13) as u32 + 2, 50e-6)]), band(0.05))
                .unwrap();
        }
        let victim = router.rank_labels(keys[0])[0].clone();
        router.kill(&victim).unwrap();

        // The first screen against the dead owner fails over AND (backoff
        // saturated on the first failure) heals: every golden the victim
        // owned re-replicates to the survivors.
        let observed = sig(&[(1, 100e-6), ((keys[0] % 13) as u32 + 2, 50e-6)]);
        assert_eq!(router.screen_one(keys[0], &observed).unwrap().ndf, 0.0);

        let names: Vec<String> = router.events().events.into_iter().map(|event| event.name).collect();
        assert_eq!(
            names.iter().filter(|name| *name == "replica.healed").count(),
            1,
            "healing fires exactly once per death: {names:?}"
        );

        // After healing, every key the victim owned screens cleanly even
        // though the victim is still dead.
        for &key in &keys {
            let observed = sig(&[(1, 100e-6), ((key % 13) as u32 + 2, 50e-6)]);
            assert_eq!(router.screen_one(key, &observed).unwrap().ndf, 0.0);
        }
    }
}
