//! The router's authoritative golden store.
//!
//! A [`RouterStore`] wraps a [`GoldenStore`] (same `DSGS` on-disk format,
//! same fingerprint keying), playing the *characterization authority* role
//! in the routing tier: new goldens are characterized (or loaded) here, then
//! **pushed** to the backends that own them under rendezvous hashing; when a
//! failover backend misses a golden mid-request, the router **refreshes** it
//! from this store; and when the router itself misses (say, after a
//! restart with an empty store), it **reads the record back** from whichever
//! backend holds it. The push/refresh/readback logic lives on the router
//! core, which owns both this store and the backend set.

use std::path::Path;
use std::sync::Arc;

use cut_filters::BiquadParams;
use dsig_core::{AcceptanceBand, Signature, TestSetup};
use dsig_serve::{GoldenRecord, GoldenStore};

use crate::error::Result;

/// The router-local golden store: a shared, `DSGS`-compatible
/// [`GoldenStore`].
///
/// Cloning is cheap (the underlying store is shared), so a TCP router, its
/// in-process handles and a characterization loop can all hold the same
/// authority.
#[derive(Debug, Clone, Default)]
pub struct RouterStore {
    local: Arc<GoldenStore>,
}

impl RouterStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps an existing golden store (e.g. one produced by a
    /// characterization campaign) as the router's authority.
    pub fn with_store(store: Arc<GoldenStore>) -> Self {
        RouterStore { local: store }
    }

    /// The underlying golden store.
    pub fn local(&self) -> &Arc<GoldenStore> {
        &self.local
    }

    /// Characterizes `(setup, reference)` into the local store and returns
    /// its fingerprint — the local half of the replication path (the router
    /// core pushes the record to the owning backends afterwards).
    ///
    /// # Errors
    /// Propagates golden-capture errors.
    pub fn characterize(&self, setup: &TestSetup, reference: &BiquadParams, band: AcceptanceBand) -> Result<u64> {
        self.local.characterize(setup, reference, band).map_err(Into::into)
    }

    /// Looks up a golden record by fingerprint.
    pub fn get(&self, key: u64) -> Option<Arc<GoldenRecord>> {
        self.local.get(key)
    }

    /// Inserts (or replaces) a record under an explicit fingerprint.
    pub fn insert(&self, key: u64, golden: Signature, band: AcceptanceBand) {
        self.local.insert(key, golden, band);
    }

    /// The stored fingerprints, ascending.
    pub fn keys(&self) -> Vec<u64> {
        self.local.keys()
    }

    /// Number of stored goldens.
    pub fn len(&self) -> usize {
        self.local.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.local.is_empty()
    }

    /// Persists the store in the `DSGS` format (identical to
    /// [`GoldenStore::save`] — a store written by a router loads in a serving
    /// process and vice versa).
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        self.local.save(path).map_err(Into::into)
    }

    /// Loads a `DSGS` store written by [`RouterStore::save`] (or by any
    /// [`GoldenStore`] producer).
    ///
    /// # Errors
    /// Propagates filesystem and decoding errors.
    pub fn load(path: impl AsRef<Path>) -> Result<Self> {
        Ok(RouterStore {
            local: Arc::new(GoldenStore::load(path)?),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsig_core::{SignatureEntry, ZoneCode};

    #[test]
    fn store_is_dsgs_compatible_and_shared_between_clones() {
        let store = RouterStore::new();
        assert!(store.is_empty());
        let golden = Signature::new(vec![SignatureEntry {
            code: ZoneCode(3),
            duration: 1e-4,
        }])
        .unwrap();
        store.insert(7, golden.clone(), AcceptanceBand::new(0.03).unwrap());
        let clone = store.clone();
        assert_eq!(clone.len(), 1, "clones share the underlying store");
        assert_eq!(clone.get(7).unwrap().golden, golden);

        let path = std::env::temp_dir().join(format!("router-store-{}.bin", std::process::id()));
        store.save(&path).unwrap();
        // The bytes are a plain DSGS golden store.
        let as_serve_store = GoldenStore::load(&path).unwrap();
        assert_eq!(as_serve_store.keys(), vec![7]);
        let reloaded = RouterStore::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(reloaded.keys(), store.keys());
    }

    #[test]
    fn characterize_matches_the_serving_fingerprint() {
        let setup = TestSetup::paper_default().unwrap().with_sample_rate(1e6).unwrap();
        let reference = BiquadParams::paper_default();
        let band = AcceptanceBand::new(0.03).unwrap();
        let store = RouterStore::new();
        let key = store.characterize(&setup, &reference, band).unwrap();
        assert_eq!(key, dsig_engine::golden_fingerprint(&setup, &reference));
        assert_eq!(store.len(), 1);
        assert!(store.get(key).is_some());
    }
}
