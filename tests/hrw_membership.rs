//! Property tests of the rendezvous-hashing contract the elastic fleet
//! rests on: membership changes move the **minimum** set of keys. For any
//! fleet, any key and any replica depth `r`, a member leaving changes a
//! key's replica set iff the departed member was in it, and a member
//! joining changes it iff the newcomer broke into it — because the
//! surviving members' relative rank order is *exactly* preserved. This is
//! what lets the router migrate only the joiner's share of goldens and
//! re-home only the departed member's replicas, with zero remapping for
//! everyone else.

use analog_signature::router::{hrw_weight, mix64, rank_backends};
use proptest::prelude::*;

/// A fleet of `count` unique backend ids: sequential (the in-process
/// default) or hashed (how TCP backends fingerprint their address).
/// `mix64` is a bijection, so distinct inputs guarantee distinct ids.
fn fleet_ids(count: usize, seed: u64, hashed: bool) -> Vec<u64> {
    (0..count as u64)
        .map(|i| if hashed { mix64(seed.wrapping_add(i)) } else { i })
        .collect()
}

/// `rank_backends` as an id sequence instead of an index sequence, which
/// is what survives comparison across fleets of different shapes.
fn rank_ids(key: u64, ids: &[u64]) -> Vec<u64> {
    rank_backends(key, ids).into_iter().map(|i| ids[i]).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The ranking is a permutation sorted by strictly descending
    /// rendezvous weight (index-tie-broken), so it is total, deterministic
    /// and identical on every router instance.
    #[test]
    fn ranking_is_a_permutation_in_descending_weight_order(
        count in 2usize..10,
        seed in 0u64..u64::MAX,
        key in 0u64..u64::MAX,
        hashed in prop::bool::ANY,
    ) {
        let ids = fleet_ids(count, seed, hashed);
        let ranked = rank_backends(key, &ids);
        let mut sorted = ranked.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..count).collect::<Vec<usize>>());
        for pair in ranked.windows(2) {
            let (wa, wb) = (hrw_weight(key, ids[pair[0]]), hrw_weight(key, ids[pair[1]]));
            prop_assert!(
                wa > wb || (wa == wb && pair[0] < pair[1]),
                "rank not in descending weight order for key {key:#x}"
            );
        }
    }

    /// Leave: the post-leave ranking is the old one with the departed
    /// member deleted, so at every replica depth the replica set moves iff
    /// the departed member was in it — the moved-key bound.
    #[test]
    fn leave_only_remaps_keys_that_ranked_the_departed_member(
        count in 2usize..10,
        seed in 0u64..u64::MAX,
        key in 0u64..u64::MAX,
        victim in 0usize..64,
        hashed in prop::bool::ANY,
    ) {
        let ids = fleet_ids(count, seed, hashed);
        let victim = ids[victim % count];
        let survivors: Vec<u64> = ids.iter().copied().filter(|&id| id != victim).collect();

        let before = rank_ids(key, &ids);
        let after = rank_ids(key, &survivors);

        // Survivors keep their exact relative order.
        let expected: Vec<u64> = before.iter().copied().filter(|&id| id != victim).collect();
        prop_assert_eq!(&after, &expected, "key {:#x}: survivors reordered", key);

        // The moved-key bound at every replica depth: a key that did not
        // rank the victim in its top r keeps its replica set bit-for-bit.
        for r in 1..survivors.len() {
            let moved = after[..r] != before[..r];
            prop_assert_eq!(
                moved,
                before[..r].contains(&victim),
                "key {:#x} depth {}: replica set moved without ranking the victim",
                key,
                r
            );
        }
    }

    /// Join: deleting the newcomer from the post-join ranking restores the
    /// old one, so at every depth the replica set moves iff the newcomer
    /// broke into it — and then it is the old set with exactly one member
    /// displaced.
    #[test]
    fn join_only_pulls_keys_the_newcomer_now_ranks(
        count in 2usize..10,
        seed in 0u64..u64::MAX,
        key in 0u64..u64::MAX,
        hashed in prop::bool::ANY,
    ) {
        let ids = fleet_ids(count, seed, hashed);
        let mut newcomer = mix64(seed ^ 0x9E37_79B9_7F4A_7C15);
        while ids.contains(&newcomer) {
            newcomer = mix64(newcomer);
        }
        let mut grown = ids.clone();
        grown.push(newcomer);

        let before = rank_ids(key, &ids);
        let after = rank_ids(key, &grown);

        // Incumbents keep their exact relative order.
        let restricted: Vec<u64> = after.iter().copied().filter(|&id| id != newcomer).collect();
        prop_assert_eq!(&restricted, &before, "key {:#x}: incumbents reordered", key);

        for r in 1..=ids.len() {
            let gained = after[..r].contains(&newcomer);
            prop_assert_eq!(
                after[..r] != before[..r],
                gained,
                "key {:#x} depth {}: replica set moved without the newcomer in it",
                key,
                r
            );
            if gained {
                // Exactly one displacement: the new set is the old top r-1
                // plus the newcomer (the old depth r-1 member fell out).
                let mut got: Vec<u64> = after[..r].to_vec();
                let mut expected: Vec<u64> = before[..r - 1].to_vec();
                expected.push(newcomer);
                got.sort_unstable();
                expected.sort_unstable();
                prop_assert_eq!(got, expected, "key {:#x} depth {}", key, r);
            }
        }
    }
}

/// The ownership share a join actually moves: exactly the keys the
/// newcomer wins, which is the fair `1/(n+1)` slice of the keyspace (within
/// loose statistical bounds), not a rehash of everything.
#[test]
fn a_join_moves_exactly_the_newcomers_fair_share_of_owners() {
    for n in [2usize, 4, 8] {
        let ids: Vec<u64> = (0..n as u64).collect();
        let newcomer = 1000u64;
        let mut grown = ids.clone();
        grown.push(newcomer);
        let keys: Vec<u64> = (0..4096u64).map(mix64).collect();

        let moved: Vec<u64> = keys
            .iter()
            .copied()
            .filter(|&key| rank_ids(key, &ids)[0] != rank_ids(key, &grown)[0])
            .collect();
        assert!(
            moved.iter().all(|&key| rank_ids(key, &grown)[0] == newcomer),
            "n={n}: a key changed owner without the newcomer winning it"
        );
        let fair = keys.len() / (n + 1);
        assert!(
            (fair / 2..=2 * fair).contains(&moved.len()),
            "n={n}: {} of {} owners moved; fair share is ~{fair}",
            moved.len(),
            keys.len()
        );
    }
}
