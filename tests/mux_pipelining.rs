//! Acceptance tests of the multiplexed serving core: one TCP connection
//! carrying hundreds of concurrently in-flight tagged requests must answer
//! them **out of order** (matched by the echoed request id) while staying
//! bit-identical to the blocking one-in-flight path — through a bare server
//! and through a routed 1k-device campaign at backend counts 1, 2 and 4 —
//! and the readiness-driven event loop must survive chaos: slow-loris
//! writers, mid-frame disconnects, garbage frames and stalled readers with
//! full write buffers, none of which may wedge other connections.

use std::io::Write;
use std::net::TcpStream;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

use analog_signature::dsig::{AcceptanceBand, RetestPolicy, Signature, SignatureEntry, TestSetup, ZoneCode};
use analog_signature::engine::{available_threads, Campaign, CampaignReport, CampaignRunner, DevicePopulation};
use analog_signature::filters::BiquadParams;
use analog_signature::obs::trace::{self, TraceContext};
use analog_signature::router::{Backend, PipelinedRouterClient, Router, RouterClient, RouterConfig, RouterStore};
use analog_signature::serve::{
    proto, GoldenStore, PipelinedClient, RetestItem, RetestRequest, ServeClient, ServeConfig, Server,
};

const DEVICES: usize = 1000;
const IN_FLIGHT: usize = 256;

/// Serializes the tests in this binary: the serving tier meters into the
/// process-global registry/tracer, so exact metric deltas and trace drains
/// are only meaningful while no sibling test is talking to a server.
fn exclusive() -> std::sync::MutexGuard<'static, ()> {
    static GUARD: Mutex<()> = Mutex::new(());
    GUARD.lock().unwrap_or_else(|e| e.into_inner())
}

struct Lot {
    setup: TestSetup,
    reference: BiquadParams,
    band: AcceptanceBand,
    report: CampaignReport,
    signatures: Vec<Signature>,
}

/// Simulates the lot once for every test in this file; the report's
/// per-device scores *are* direct `TestFlow` scoring.
fn lot() -> &'static Lot {
    static LOT: OnceLock<Lot> = OnceLock::new();
    LOT.get_or_init(|| {
        let setup = TestSetup::paper_default().unwrap().with_sample_rate(1e6).unwrap();
        let reference = BiquadParams::paper_default();
        let band = AcceptanceBand::new(0.03).unwrap();
        let campaign = Campaign::new(
            setup.clone(),
            reference,
            DevicePopulation::MonteCarlo {
                devices: DEVICES,
                sigma_pct: 3.0,
            },
            band,
            3.0,
        )
        .unwrap()
        .with_seed(77);
        let (report, log) = CampaignRunner::new().run_logged(&campaign).unwrap();
        Lot {
            setup,
            reference,
            band,
            report,
            signatures: log.entries().iter().map(|(_, s)| s.clone()).collect(),
        }
    })
}

fn served_store() -> (Arc<GoldenStore>, u64) {
    let lot = lot();
    let store = Arc::new(GoldenStore::new());
    let key = store.characterize(&lot.setup, &lot.reference, lot.band).unwrap();
    (store, key)
}

#[test]
fn hundreds_of_in_flight_requests_on_one_connection_match_the_blocking_path() {
    let _exclusive = exclusive();
    let lot = lot();
    let (store, key) = served_store();
    let server = Server::bind("127.0.0.1:0", store, ServeConfig::with_shards(4)).unwrap();

    // 32 DSRT retest requests ride along with the 256 DSRQ screens, so both
    // tagged work families interleave on the same stream.
    let policy = RetestPolicy::new(0.01, vec![2, 4]).unwrap();
    let retests: Vec<RetestRequest> = (0..32)
        .map(|r| RetestRequest {
            golden_key: key,
            policy: policy.clone(),
            items: (0..8)
                .map(|i| {
                    let at = (r * 8 + i) % (DEVICES - 5);
                    RetestItem {
                        initial: lot.signatures[at].clone(),
                        repeats: lot.signatures[at + 1..at + 5].to_vec(),
                    }
                })
                .collect(),
        })
        .collect();

    // Ground truth: the blocking one-in-flight client.
    let mut blocking = ServeClient::connect(server.local_addr()).unwrap();
    let blocking_scores: Vec<_> = lot.signatures[..IN_FLIGHT]
        .iter()
        .map(|s| blocking.screen_one(key, s).unwrap())
        .collect();
    let blocking_retests: Vec<_> = retests.iter().map(|r| blocking.screen_retest(r).unwrap()).collect();

    // Snapshot the per-family counters after the blocking run, drain stale
    // spans, then put every request in flight before waiting on any: 288
    // responses outstanding on one connection.
    let before = server.metrics();
    let _ = server.handle().traces();
    let pipelined = PipelinedClient::connect(server.local_addr()).unwrap();
    let screen_tickets: Vec<_> = lot.signatures[..IN_FLIGHT]
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let _ctx = trace::with_context(TraceContext {
                trace_id: 0xACE0_0000 + i as u64,
                parent_span: 1,
                sampled: true,
            });
            pipelined.start_screen(key, std::slice::from_ref(s)).unwrap()
        })
        .collect();
    let retest_tickets: Vec<_> = retests
        .iter()
        .enumerate()
        .map(|(r, request)| {
            let _ctx = trace::with_context(TraceContext {
                trace_id: 0xBEE0_0000 + r as u64,
                parent_span: 1,
                sampled: true,
            });
            pipelined.start_retest(request).unwrap()
        })
        .collect();

    for (i, ticket) in screen_tickets.into_iter().enumerate() {
        let scores = pipelined.wait_screen(ticket, 1, key).unwrap();
        assert_eq!(scores.len(), 1);
        assert_eq!(
            scores[0].ndf.to_bits(),
            blocking_scores[i].ndf.to_bits(),
            "device {i}: pipelined NDF must be bit-identical to the blocking path"
        );
        assert_eq!(scores[0].outcome, blocking_scores[i].outcome, "device {i}");
        assert_eq!(scores[0].peak_hamming, blocking_scores[i].peak_hamming, "device {i}");
    }
    for (r, ticket) in retest_tickets.into_iter().enumerate() {
        let scores = pipelined.wait_retest(ticket, retests[r].items.len(), key).unwrap();
        assert_eq!(scores, blocking_retests[r], "retest request {r}");
        for (a, b) in scores.iter().zip(&blocking_retests[r]) {
            assert_eq!(a.score.ndf.to_bits(), b.score.ndf.to_bits(), "retest request {r}");
        }
    }

    // Per-family metrics survived the interleaving: exactly 256 more DSRQ
    // and 32 more DSRT dispatches, every signature counted once.
    let after = server.metrics();
    let delta = |name: &str| after.counter(name).unwrap_or(0) - before.counter(name).unwrap_or(0);
    assert_eq!(delta("serve.requests.dsrq"), IN_FLIGHT as u64);
    assert_eq!(delta("serve.requests.dsrt"), 32);
    assert_eq!(delta("serve.errors.decode"), 0);

    // And so did the trace contexts: every request's spans landed under the
    // trace id its issuing context carried, none under anyone else's.
    let spans = server.handle().traces().spans;
    let seen: std::collections::HashSet<u64> = spans.iter().map(|s| s.trace_id).collect();
    for i in 0..IN_FLIGHT as u64 {
        assert!(
            seen.contains(&(0xACE0_0000 + i)),
            "screen trace {i} lost in interleaving"
        );
    }
    for r in 0..32u64 {
        assert!(
            seen.contains(&(0xBEE0_0000 + r)),
            "retest trace {r} lost in interleaving"
        );
    }
    for id in &seen {
        assert!(
            (0xACE0_0000..0xACE0_0000 + IN_FLIGHT as u64).contains(id) || (0xBEE0_0000..0xBEE0_0000 + 32).contains(id),
            "span recorded under unknown trace id {id:#x}"
        );
    }
}

#[test]
fn scrape_frames_interleave_with_hundreds_of_in_flight_screens() {
    let _exclusive = exclusive();
    let lot = lot();
    let (store, key) = served_store();
    let server = Server::bind("127.0.0.1:0", store, ServeConfig::with_shards(4)).unwrap();

    let mut blocking = ServeClient::connect(server.local_addr()).unwrap();
    let reference = blocking.screen_one(key, &lot.signatures[0]).unwrap();

    // Put 128 screens in flight, then run the whole observability surface —
    // DSMX, DSFM, DSEX (twice), DSHC — on the *same* connection while the
    // work drains. The scrapes ride the tagged mux like any other request,
    // so they answer without waiting for the queue ahead of them.
    let before = server.metrics();
    let pipelined = PipelinedClient::connect(server.local_addr()).unwrap();
    const WORK: usize = 128;
    let tickets: Vec<_> = (0..WORK)
        .map(|_| {
            pipelined
                .start_screen(key, std::slice::from_ref(&lot.signatures[0]))
                .unwrap()
        })
        .collect();

    let snapshot = pipelined.metrics().unwrap();
    assert!(
        snapshot.counter("serve.requests.dsrq").is_some(),
        "mid-flight DSMX must answer a live snapshot"
    );
    let fleet = pipelined.fleet_metrics().unwrap();
    assert!(
        fleet.counter("serve.requests.dsrq").is_some(),
        "a bare server answers DSFM as a fleet of one (unprefixed)"
    );
    let health = pipelined.health().unwrap();
    assert_eq!(
        (health.backed_off, health.backends),
        (0, 1),
        "a standalone server is a fleet of one with nothing backed off: {health:?}"
    );
    let drained = pipelined.events().unwrap();
    let again = pipelined.events().unwrap();
    for event in &again.events {
        assert!(
            !drained
                .events
                .iter()
                .any(|e| (e.at_us, &e.name, &e.message) == (event.at_us, &event.name, &event.message)),
            "DSEX is a take: no event may be exported twice ({})",
            event.name
        );
    }

    // The interleaved scrapes cost the work nothing: every screen comes
    // back bit-identical to the blocking path.
    for ticket in tickets {
        let scores = pipelined.wait_screen(ticket, 1, key).unwrap();
        assert_eq!(scores[0].ndf.to_bits(), reference.ndf.to_bits());
        assert_eq!(scores[0].outcome, reference.outcome);
    }
    let after = server.metrics();
    let delta = |name: &str| after.counter(name).unwrap_or(0) - before.counter(name).unwrap_or(0);
    assert_eq!(delta("serve.requests.dsrq"), WORK as u64);
    assert_eq!(delta("serve.requests.dsmx"), 1);
    assert_eq!(delta("serve.requests.dsfm"), 1);
    assert_eq!(delta("serve.requests.dsex"), 2);
    assert_eq!(delta("serve.requests.dshc"), 1);
    assert_eq!(delta("serve.errors.decode"), 0);
}

#[test]
fn tagged_responses_complete_out_of_order_and_are_matched_by_id() {
    let _exclusive = exclusive();
    let lot = lot();
    let (store, key) = served_store();
    let server = Server::bind("127.0.0.1:0", store, ServeConfig::with_shards(2)).unwrap();

    let mut blocking = ServeClient::connect(server.local_addr()).unwrap();
    let light_score = blocking.screen_one(key, &lot.signatures[0]).unwrap();

    // Raw wire: request id 1 carries a 2048-signature batch, ids 2..=65 one
    // signature each. With more than one pool worker the light responses
    // overtake the heavy one, so the arrival order cannot be the submission
    // order — the echoed id is the only correlator.
    let heavy_batch = vec![lot.signatures[0].clone(); 2048];
    let attempts = if available_threads() >= 2 { 3 } else { 0 };
    let mut saw_reordering = attempts == 0;
    for _ in 0..attempts.max(1) {
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        let mut writer = std::io::BufWriter::new(stream.try_clone().unwrap());
        let mut reader = std::io::BufReader::new(stream);
        let mut frame = proto::encode_request(key, &heavy_batch);
        proto::stamp_request_id(&mut frame, 1);
        proto::write_frame(&mut writer, &frame).unwrap();
        for id in 2u64..=65 {
            let mut frame = proto::encode_request(key, std::slice::from_ref(&lot.signatures[0]));
            proto::stamp_request_id(&mut frame, id);
            proto::write_frame(&mut writer, &frame).unwrap();
        }
        writer.flush().unwrap();

        let mut arrival = Vec::with_capacity(65);
        for _ in 0..65 {
            let payload = proto::read_frame(&mut reader).unwrap().expect("response frame");
            let id = proto::peek_request_id(&payload);
            let scores = match proto::decode_response(&payload).unwrap() {
                proto::ScreenResponse::Results(scores) => scores,
                other => panic!("unexpected response {other:?}"),
            };
            let expected = if id == 1 { heavy_batch.len() } else { 1 };
            assert_eq!(scores.len(), expected, "response {id}");
            for score in &scores {
                assert_eq!(score.ndf.to_bits(), light_score.ndf.to_bits(), "response {id}");
            }
            arrival.push(id);
        }
        let mut ids = arrival.clone();
        ids.sort_unstable();
        assert_eq!(ids, (1u64..=65).collect::<Vec<_>>(), "every id answered exactly once");
        if arrival != ids {
            saw_reordering = true;
            break;
        }
    }
    assert!(
        saw_reordering,
        "with {} pool workers the heavy response must be overtaken by a light one",
        available_threads()
    );
}

#[test]
fn routed_pipelined_campaign_is_bit_identical_at_every_backend_count() {
    let _exclusive = exclusive();
    let lot = lot();
    const BATCH: usize = 64;
    for backends in [1usize, 2, 4] {
        // A real fleet: one TCP serve process per backend, one router in
        // front, goldens replicated through the router's (now multiplexed)
        // upstream connections.
        let servers: Vec<Server> = (0..backends)
            .map(|_| Server::bind("127.0.0.1:0", Arc::new(GoldenStore::new()), ServeConfig::default()).unwrap())
            .collect();
        let fleet = servers.iter().map(|s| Backend::tcp(s.local_addr())).collect();
        let router = Router::bind(
            "127.0.0.1:0",
            fleet,
            RouterStore::new(),
            RouterConfig {
                sub_batch: 97, // coprime with BATCH: split boundaries land everywhere
                ..RouterConfig::default()
            },
        )
        .unwrap();
        let key = router
            .handle()
            .characterize(&lot.setup, &lot.reference, lot.band)
            .unwrap();

        let mut blocking = RouterClient::connect(router.local_addr()).unwrap();
        let mut blocking_scores = Vec::with_capacity(DEVICES);
        for batch in lot.signatures.chunks(BATCH) {
            blocking_scores.extend(blocking.screen(key, batch).unwrap());
        }

        // The pipelined campaign: every batch in flight before any is
        // awaited, all on one downstream connection.
        let pipelined = PipelinedRouterClient::connect(router.local_addr()).unwrap();
        let tickets: Vec<_> = lot
            .signatures
            .chunks(BATCH)
            .map(|batch| (pipelined.start_screen(key, batch).unwrap(), batch.len()))
            .collect();
        let mut scores = Vec::with_capacity(DEVICES);
        for (ticket, expected) in tickets {
            scores.extend(pipelined.wait_screen(ticket, expected, key).unwrap());
        }

        assert_eq!(scores.len(), DEVICES);
        for ((score, blocked), result) in scores.iter().zip(&blocking_scores).zip(&lot.report.results) {
            assert_eq!(
                score.ndf.to_bits(),
                result.ndf.to_bits(),
                "backends={backends} device={}: routed pipelined NDF must be bit-identical to direct scoring",
                result.index
            );
            assert_eq!(score.ndf.to_bits(), blocked.ndf.to_bits(), "backends={backends}");
            assert_eq!(
                score.outcome, result.outcome,
                "backends={backends} device={}",
                result.index
            );
            assert_eq!(score.peak_hamming, result.peak_hamming, "backends={backends}");
        }
    }
}

#[test]
fn pre_tagging_v1_clients_still_round_trip_against_the_upgraded_server() {
    let _exclusive = exclusive();
    let lot = lot();
    let (store, key) = served_store();
    let server = Server::bind("127.0.0.1:0", store, ServeConfig::with_shards(2)).unwrap();
    let addr = server.local_addr();

    let mut blocking = ServeClient::connect(addr).unwrap();
    let expected = blocking.screen_one(key, &lot.signatures[0]).unwrap();

    // A frame exactly as a pre-tagging binary emits it: version-1 header,
    // no request id, no trace context. Such a binary also decodes responses
    // with `max_version = 1`, so the answer must come back as version 1 too
    // — the whole point of the untagged inline path.
    let current = proto::encode_request(key, std::slice::from_ref(&lot.signatures[0]));
    let mut v1 = Vec::new();
    v1.extend_from_slice(&current[..4]);
    v1.extend_from_slice(&1u16.to_le_bytes());
    v1.extend_from_slice(&current[14 + 17..]); // body after the id + trace context

    let stream = TcpStream::connect(addr).unwrap();
    let mut writer = std::io::BufWriter::new(stream.try_clone().unwrap());
    let mut reader = std::io::BufReader::new(stream);
    for round in 0..3 {
        proto::write_frame(&mut writer, &v1).unwrap();
        writer.flush().unwrap();
        let response = proto::read_frame(&mut reader).unwrap().expect("v1 response");
        assert_eq!(&response[..4], b"DSRS", "round {round}");
        assert_eq!(
            u16::from_le_bytes(response[4..6].try_into().unwrap()),
            1,
            "round {round}: a v1-only reader rejects anything newer, so the response must be v1"
        );
        match proto::decode_response(&response).unwrap() {
            proto::ScreenResponse::Results(scores) => {
                assert_eq!(scores.len(), 1, "round {round}");
                assert_eq!(scores[0].ndf.to_bits(), expected.ndf.to_bits(), "round {round}");
                assert_eq!(scores[0].outcome, expected.outcome, "round {round}");
            }
            other => panic!("round {round}: unexpected response {other:?}"),
        }
    }

    // The scrape families tag from v2; a v1 `DSMX` must draw a v1 `DSMR`.
    let mut scrape = Vec::new();
    scrape.extend_from_slice(b"DSMX");
    scrape.extend_from_slice(&1u16.to_le_bytes());
    proto::write_frame(&mut writer, &scrape).unwrap();
    writer.flush().unwrap();
    let response = proto::read_frame(&mut reader).unwrap().expect("v1 scrape response");
    assert_eq!(&response[..4], b"DSMR");
    assert_eq!(u16::from_le_bytes(response[4..6].try_into().unwrap()), 1);
    assert!(matches!(
        proto::decode_metrics_response(&response).unwrap(),
        proto::MetricsResponse::Snapshot(_)
    ));
}

#[test]
fn slow_loris_mid_frame_disconnects_and_garbage_do_not_wedge_other_connections() {
    let _exclusive = exclusive();
    let lot = lot();
    let (store, key) = served_store();
    let server = Server::bind("127.0.0.1:0", store, ServeConfig::with_shards(2)).unwrap();
    let addr = server.local_addr();

    let mut blocking = ServeClient::connect(addr).unwrap();
    let reference_score = blocking.screen_one(key, &lot.signatures[0]).unwrap();

    // Chaos peer 1: a slow-loris writer trickling one valid tagged frame a
    // byte at a time. It must eventually get its correct answer — and must
    // not delay anyone else while trickling.
    let loris = {
        let signature = lot.signatures[0].clone();
        std::thread::spawn(move || {
            let mut payload = proto::encode_request(key, std::slice::from_ref(&signature));
            proto::stamp_request_id(&mut payload, 42);
            let mut wire_bytes = (payload.len() as u32).to_le_bytes().to_vec();
            wire_bytes.append(&mut payload);
            let mut stream = TcpStream::connect(addr).unwrap();
            for byte in wire_bytes {
                stream.write_all(&[byte]).unwrap();
                stream.flush().unwrap();
                std::thread::sleep(Duration::from_millis(1));
            }
            let mut reader = std::io::BufReader::new(stream);
            let payload = proto::read_frame(&mut reader).unwrap().expect("loris response");
            assert_eq!(proto::peek_request_id(&payload), 42);
            match proto::decode_response(&payload).unwrap() {
                proto::ScreenResponse::Results(scores) => scores[0],
                other => panic!("unexpected loris response {other:?}"),
            }
        })
    };

    // Chaos peer 2: claims a 1000-byte frame, sends 10 bytes, disconnects
    // mid-frame. Chaos peer 3: a well-framed garbage payload — the server
    // must answer with a decode error, not drop the connection silently.
    let torn = std::thread::spawn(move || {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(&1000u32.to_le_bytes()).unwrap();
        stream.write_all(&[0xAB; 10]).unwrap();
    });
    let garbage = std::thread::spawn(move || {
        let stream = TcpStream::connect(addr).unwrap();
        let mut writer = std::io::BufWriter::new(stream.try_clone().unwrap());
        proto::write_frame(&mut writer, b"JUNKJUNKJUNKJUNK").unwrap();
        writer.flush().unwrap();
        let mut reader = std::io::BufReader::new(stream);
        let response = proto::read_frame(&mut reader).unwrap();
        assert!(response.is_some(), "garbage must be answered with an error frame");
    });

    // Meanwhile the healthy connection pipelines 200 screens; every one
    // must come back promptly and bit-identical despite the chaos peers.
    let pipelined = PipelinedClient::connect(addr).unwrap();
    let tickets: Vec<_> = (0..200)
        .map(|_| {
            pipelined
                .start_screen(key, std::slice::from_ref(&lot.signatures[0]))
                .unwrap()
        })
        .collect();
    for ticket in tickets {
        let scores = pipelined.wait_screen(ticket, 1, key).unwrap();
        assert_eq!(scores[0].ndf.to_bits(), reference_score.ndf.to_bits());
    }

    let loris_score = loris.join().expect("slow-loris must be served, not wedged");
    assert_eq!(loris_score.ndf.to_bits(), reference_score.ndf.to_bits());
    torn.join().unwrap();
    garbage.join().unwrap();

    // The torn frame and the garbage frame cost the server nothing but a
    // decode error; it still serves new connections.
    let mut fresh = ServeClient::connect(addr).unwrap();
    let score = fresh.screen_one(key, &lot.signatures[0]).unwrap();
    assert_eq!(score.ndf.to_bits(), reference_score.ndf.to_bits());
}

#[test]
fn a_stalled_reader_with_a_full_write_buffer_does_not_block_other_connections() {
    let _exclusive = exclusive();
    let lot = lot();
    let (store, key) = served_store();
    let server = Server::bind("127.0.0.1:0", store, ServeConfig::with_shards(2)).unwrap();
    let addr = server.local_addr();

    let mut blocking = ServeClient::connect(addr).unwrap();
    let reference_score = blocking.screen_one(key, &lot.signatures[0]).unwrap();

    // The stalled peer: pipelines 256 requests for 256-score responses
    // (roughly 850 KiB of answers) and never reads a byte. Its connection's
    // writer thread backs up against the kernel buffers; the pool and every
    // other connection must not.
    let tiny = Signature::new(vec![SignatureEntry {
        code: ZoneCode(1),
        duration: 1e-6,
    }])
    .unwrap();
    let stalled = TcpStream::connect(addr).unwrap();
    {
        let mut writer = std::io::BufWriter::new(stalled.try_clone().unwrap());
        let batch = vec![tiny; 256];
        for id in 1u64..=256 {
            let mut frame = proto::encode_request(key, &batch);
            proto::stamp_request_id(&mut frame, id);
            proto::write_frame(&mut writer, &frame).unwrap();
        }
        writer.flush().unwrap();
    }
    // Let the pool chew through the stalled peer's requests so its writer
    // is actually wedged against the unread buffer, not merely idle.
    std::thread::sleep(Duration::from_millis(300));

    // A healthy client must screen unimpeded — run it on a watchdog so a
    // wedged event loop fails the test instead of hanging it.
    let healthy = {
        let signature = lot.signatures[0].clone();
        std::thread::spawn(move || {
            let pipelined = PipelinedClient::connect(addr).unwrap();
            let tickets: Vec<_> = (0..64)
                .map(|_| pipelined.start_screen(key, std::slice::from_ref(&signature)).unwrap())
                .collect();
            tickets
                .into_iter()
                .map(|t| pipelined.wait_screen(t, 1, key).unwrap()[0])
                .collect::<Vec<_>>()
        })
    };
    let (done, watchdog) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let _ = done.send(healthy.join());
    });
    let scores = watchdog
        .recv_timeout(Duration::from_secs(30))
        .expect("healthy connection starved by a stalled peer")
        .expect("healthy client panicked");
    assert_eq!(scores.len(), 64);
    for score in scores {
        assert_eq!(score.ndf.to_bits(), reference_score.ndf.to_bits());
    }
    drop(stalled);
}
