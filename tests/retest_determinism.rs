//! Acceptance test of the adaptive retest tier: a noisy 1000-device
//! Monte-Carlo lot whose guard band catches well over 5% of the population
//! must produce **bit-identical campaign reports — including the retest
//! statistics — across every score target**: local scoring,
//! `ScoreTarget::Remote(ServeHandle)` and `RouterHandle` at backend counts
//! {1, 2, 4}, with one owner backend killed mid-lot. At least one marginal
//! device must flip to its *true* verdict only through the averaged retest.

use std::sync::{Arc, OnceLock};

use analog_signature::dsig::{AcceptanceBand, RetestPolicy, TestOutcome, TestSetup};
use analog_signature::engine::{Campaign, CampaignReport, CampaignRunner, DevicePopulation, ScoreTarget};
use analog_signature::filters::BiquadParams;
use analog_signature::router::{RouterConfig, RouterHandle, RouterStore};
use analog_signature::serve::{GoldenStore, ServeConfig, ServeHandle};
use proptest::prelude::*;

const DEVICES: usize = 1000;

struct Lot {
    campaign: Campaign,
    policy: RetestPolicy,
    local: CampaignReport,
}

/// The noisy lot, its retest policy, and the locally scored reference report
/// — computed once for every test in this file.
fn lot() -> &'static Lot {
    static LOT: OnceLock<Lot> = OnceLock::new();
    LOT.get_or_init(|| {
        let setup = TestSetup::paper_default()
            .unwrap()
            .with_sample_rate(1e6)
            .unwrap()
            .with_noise(analog_signature::signal::NoiseModel::paper_default());
        let campaign = Campaign::new(
            setup,
            BiquadParams::paper_default(),
            DevicePopulation::MonteCarlo {
                devices: DEVICES,
                sigma_pct: 3.0,
            },
            AcceptanceBand::new(0.03).unwrap(),
            3.0,
        )
        .unwrap()
        .with_seed(77);
        // The guard band is tuned so the measurement noise makes well over
        // 5% of the lot marginal; two escalation steps bound the cost.
        let policy = RetestPolicy::new(0.01, vec![2, 6]).unwrap();
        let local = runner(4).with_retest(policy.clone()).run(&campaign).unwrap();
        Lot {
            campaign,
            policy,
            local,
        }
    })
}

fn runner(threads: usize) -> CampaignRunner {
    CampaignRunner::with_threads(threads)
}

#[test]
fn the_noisy_lot_is_marginal_heavy_and_retest_flips_devices_to_their_truth() {
    let lot = lot();
    let report = &lot.local;
    assert_eq!(report.devices(), DEVICES);
    assert!(
        report.retest.marginal >= DEVICES / 20,
        "noise must make at least 5% of the lot marginal (got {} of {DEVICES})",
        report.retest.marginal
    );
    assert!(report.retest.flips() > 0, "averaging must flip some verdicts");
    assert!(report.retest.repeats_spent > 0);

    // At least one marginal device reaches its true verdict only through the
    // averaged retest: the single shot decided wrongly, the average did not.
    let true_flips = report
        .results
        .iter()
        .filter(|r| {
            let Some(meta) = r.retest else { return false };
            let truly_good = r.true_deviation_pct.abs() <= lot.campaign.tolerance_pct;
            let final_correct = (r.outcome == TestOutcome::Pass) == truly_good;
            let initial_correct = (lot.campaign.band.decide(meta.initial_ndf) == TestOutcome::Pass) == truly_good;
            meta.flipped && final_correct && !initial_correct
        })
        .count();
    assert!(
        true_flips > 0,
        "at least one marginal device must flip to its true verdict via averaged retest"
    );

    // The campaign without a policy decides those same devices wrongly — the
    // flip is attributable to the retest tier, not to some other change.
    let single_shot = runner(4).run(&lot.campaign).unwrap();
    assert_eq!(single_shot.retest.marginal, 0);
    let changed = single_shot
        .results
        .iter()
        .zip(&report.results)
        .filter(|(s, r)| s.outcome != r.outcome)
        .count();
    assert_eq!(
        changed,
        report.retest.flips(),
        "every verdict change is a recorded flip"
    );
}

#[test]
fn serve_target_reproduces_the_local_retest_report_bit_for_bit() {
    let lot = lot();
    let store = Arc::new(GoldenStore::new());
    store
        .characterize(&lot.campaign.setup, &lot.campaign.reference, lot.campaign.band)
        .unwrap();
    let serve = ServeHandle::spawn(store, ServeConfig::with_shards(3));
    let remote = runner(4)
        .with_retest(lot.policy.clone())
        .run_with_target(&lot.campaign, ScoreTarget::Remote(&serve))
        .unwrap();
    assert_eq!(
        remote, lot.local,
        "serve-scored retest report must be bit-identical to local scoring"
    );
    assert_eq!(remote.retest, lot.local.retest);
}

#[test]
fn router_target_reproduces_the_local_retest_report_at_every_backend_count() {
    let lot = lot();
    for backends in [1usize, 2, 4] {
        let router = RouterHandle::spawn(
            backends,
            ServeConfig::with_shards(2),
            RouterStore::new(),
            RouterConfig {
                sub_batch: 97, // coprime with the runner chunk: split everywhere
                ..RouterConfig::default()
            },
        )
        .unwrap();
        let key = router
            .characterize(&lot.campaign.setup, &lot.campaign.reference, lot.campaign.band)
            .unwrap();

        // At the widest fleet, kill the golden's owner mid-lot from a timer
        // thread: wherever the kill lands in the campaign, failover must not
        // change a single verdict (scoring is pure; the replica chain and
        // the router store's refresh-on-miss carry the golden).
        let killer = (backends == 4).then(|| {
            let router = router.clone();
            let owner = router.rank_labels(key)[0].clone();
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(150));
                router.kill(&owner).unwrap();
            })
        });
        let routed = runner(4)
            .with_retest(lot.policy.clone())
            .run_with_target(&lot.campaign, ScoreTarget::Remote(&router))
            .unwrap();
        if let Some(killer) = killer {
            killer.join().unwrap();
        }
        assert_eq!(
            routed, lot.local,
            "router-scored retest report diverged at {backends} backends"
        );
        assert_eq!(routed.retest, lot.local.retest);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Retest determinism: for any small lot and policy, the set of flipped
    /// devices is identical across thread counts, chunk sizes and score
    /// targets.
    #[test]
    fn flip_sets_are_identical_across_thread_counts_and_score_targets(
        seed in 0u64..1000,
        guard_milli in 5u32..20,
        first_step in 1u32..4,
    ) {
        let setup = TestSetup::paper_default()
            .unwrap()
            .with_sample_rate(1e6)
            .unwrap()
            .with_noise(analog_signature::signal::NoiseModel::paper_default());
        let campaign = Campaign::new(
            setup,
            BiquadParams::paper_default(),
            DevicePopulation::MonteCarlo { devices: 16, sigma_pct: 4.0 },
            AcceptanceBand::new(0.03).unwrap(),
            3.0,
        )
        .unwrap()
        .with_seed(seed);
        let policy = RetestPolicy::new(f64::from(guard_milli) / 1000.0, vec![first_step, first_step + 3]).unwrap();

        let flip_set = |report: &CampaignReport| -> Vec<usize> {
            report
                .results
                .iter()
                .filter(|r| r.retest.is_some_and(|m| m.flipped))
                .map(|r| r.index)
                .collect()
        };
        let reference = runner(1).with_retest(policy.clone()).run(&campaign).unwrap();
        let flips = flip_set(&reference);
        for threads in [2usize, 5] {
            let report = runner(threads)
                .with_chunk_size(3)
                .with_retest(policy.clone())
                .run(&campaign)
                .unwrap();
            prop_assert_eq!(&report, &reference);
            prop_assert_eq!(flip_set(&report), flips.clone());
        }
        // The serving tier decides the same flip set.
        let store = Arc::new(GoldenStore::new());
        store
            .characterize(&campaign.setup, &campaign.reference, campaign.band)
            .unwrap();
        let serve = ServeHandle::spawn(store, ServeConfig::with_shards(2));
        let remote = runner(3)
            .with_retest(policy)
            .run_with_target(&campaign, ScoreTarget::Remote(&serve))
            .unwrap();
        prop_assert_eq!(&remote, &reference);
        prop_assert_eq!(flip_set(&remote), flips);
    }
}
