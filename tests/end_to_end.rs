//! End-to-end integration tests: stimulus → Biquad CUT → monitors →
//! signature → NDF → decision, across all workspace crates.

use analog_signature::dsig::{AcceptanceBand, TestFlow, TestOutcome, TestSetup};
use analog_signature::filters::{BiquadParams, ComponentRef, Fault};
use analog_signature::signal::NoiseModel;

fn paper_flow() -> TestFlow {
    let setup = TestSetup::paper_default()
        .expect("paper setup")
        .with_sample_rate(1e6)
        .expect("sample rate");
    TestFlow::new(setup, BiquadParams::paper_default()).expect("flow")
}

#[test]
fn ten_percent_shift_ndf_matches_paper_order_of_magnitude() {
    // The paper reports NDF = 0.1021 for a +10% f0 shift (Fig. 7). Our
    // substrate differs (simulated monitors and filter), so we check the
    // order of magnitude and general placement, not the exact value.
    let flow = paper_flow();
    let report = flow.evaluate_fault(&Fault::F0ShiftPct(10.0), 1).expect("evaluate");
    assert!(
        report.ndf > 0.04 && report.ndf < 0.25,
        "NDF for +10% f0 shift should be near 0.1, got {}",
        report.ndf
    );
}

#[test]
fn ndf_grows_monotonically_with_positive_deviation() {
    let flow = paper_flow();
    let sweep = flow.sweep_f0(&[0.0, 2.0, 5.0, 10.0, 15.0, 20.0]).expect("sweep");
    for pair in sweep.windows(2) {
        assert!(
            pair[1].ndf >= pair[0].ndf - 1e-9,
            "NDF must not decrease with deviation: {:?} -> {:?}",
            pair[0],
            pair[1]
        );
    }
    // Fig. 8: the NDF at 20% deviation is substantially larger than at 5%.
    assert!(sweep[5].ndf > 2.0 * sweep[2].ndf);
}

#[test]
fn ndf_is_roughly_linear_and_symmetric_like_fig8() {
    let flow = paper_flow();
    let devs: Vec<f64> = vec![-20.0, -15.0, -10.0, -5.0, 5.0, 10.0, 15.0, 20.0];
    let sweep = flow.sweep_f0(&devs).expect("sweep");
    // Rough linearity: NDF(2d) should be between 1.2x and 3.5x NDF(d).
    let ndf_at = |d: f64| sweep.iter().find(|p| p.deviation_pct == d).expect("point").ndf;
    for d in [5.0, 10.0, -5.0, -10.0] {
        let ratio = ndf_at(2.0 * d) / ndf_at(d);
        assert!(ratio > 1.2 && ratio < 3.5, "NDF({}) / NDF({}) = {}", 2.0 * d, d, ratio);
    }
    // Rough symmetry: same sign-magnitude deviations agree within a factor ~2.5.
    for d in [5.0, 10.0, 20.0] {
        let ratio = ndf_at(d) / ndf_at(-d);
        assert!(ratio > 0.4 && ratio < 2.5, "NDF(+{d}) / NDF(-{d}) = {ratio}");
    }
}

#[test]
fn calibrated_acceptance_band_separates_in_and_out_of_tolerance() {
    let flow = paper_flow();
    let devs: Vec<f64> = (-20..=20).map(|d| d as f64).collect();
    let band = flow.calibrate_band(&devs, 3.0).expect("band");
    // In-tolerance devices pass.
    for dev in [0.0, 1.0, -2.0, 3.0] {
        let r = flow.evaluate_fault(&Fault::F0ShiftPct(dev), 9).expect("evaluate");
        assert_eq!(
            band.decide(r.ndf),
            TestOutcome::Pass,
            "{dev}% should pass (ndf {})",
            r.ndf
        );
    }
    // Far out-of-tolerance devices fail.
    for dev in [8.0, -10.0, 15.0, -20.0] {
        let r = flow.evaluate_fault(&Fault::F0ShiftPct(dev), 9).expect("evaluate");
        assert_eq!(
            band.decide(r.ndf),
            TestOutcome::Fail,
            "{dev}% should fail (ndf {})",
            r.ndf
        );
    }
}

#[test]
fn catastrophic_defects_produce_much_larger_ndf_than_parametric_ones() {
    let flow = paper_flow();
    let parametric = flow.evaluate_fault(&Fault::F0ShiftPct(10.0), 3).expect("evaluate").ndf;
    for fault in [
        Fault::Open(ComponentRef::R1),
        Fault::Short(ComponentRef::C1),
        Fault::Open(ComponentRef::Rq),
    ] {
        let catastrophic = flow.evaluate_fault(&fault, 3).expect("evaluate").ndf;
        assert!(
            catastrophic > 2.0 * parametric,
            "{fault} NDF {catastrophic} should dwarf the parametric {parametric}"
        );
    }
}

#[test]
fn one_percent_deviation_detectable_under_paper_noise() {
    // §IV-C: with 3-sigma = 0.015 V white noise, 1% f0 deviations are detected.
    let setup = TestSetup::paper_default()
        .expect("setup")
        .with_sample_rate(2e6)
        .expect("rate")
        .with_noise(NoiseModel::paper_default());
    let reference = BiquadParams::paper_default();
    let flow = TestFlow::new(setup, reference).expect("flow");

    // The decision threshold must sit above the noise-induced NDF floor of a
    // nominal device, characterized over repeated averaged measurements.
    let (_, floor_max) = flow.noise_floor(4, 6, 500).expect("floor");
    let band = AcceptanceBand::new(floor_max * 1.2 + 1e-4).expect("band");
    let min_dev = flow
        .minimum_detectable_deviation(&band, 10.0, 6, 17)
        .expect("search")
        .expect("some deviation must be detectable");
    assert!(
        min_dev <= 2.0,
        "minimum detectable deviation under paper noise should be ~1%, got {min_dev}%"
    );
}

#[test]
fn screening_a_tight_lot_yields_high_and_a_loose_lot_yields_lower() {
    let flow = paper_flow();
    let devs: Vec<f64> = (-20..=20).map(|d| d as f64).collect();
    let band = flow.calibrate_band(&devs, 3.0).expect("band");
    let tight = flow.screen_population(60, 1.0, 3.0, &band, 5).expect("screen");
    let loose = flow.screen_population(60, 6.0, 3.0, &band, 5).expect("screen");
    assert!(tight.test_yield() > loose.test_yield());
    assert!(tight.test_yield() > 0.9, "tight lot yield {}", tight.test_yield());
}

#[test]
fn quantized_and_exact_capture_agree_for_the_paper_clock() {
    // With a 10 MHz master clock the quantization error on 200 us dwell times
    // is negligible, so the NDF with and without the clock model must agree.
    let reference = BiquadParams::paper_default();
    let exact_setup = {
        let mut s = TestSetup::paper_default()
            .expect("setup")
            .with_sample_rate(1e6)
            .expect("rate");
        s.clock = None;
        s
    };
    let quantized_setup = TestSetup::paper_default()
        .expect("setup")
        .with_sample_rate(1e6)
        .expect("rate");
    let exact_flow = TestFlow::new(exact_setup, reference).expect("flow");
    let quantized_flow = TestFlow::new(quantized_setup, reference).expect("flow");
    let fault = Fault::F0ShiftPct(10.0);
    let a = exact_flow.evaluate_fault(&fault, 2).expect("evaluate").ndf;
    let b = quantized_flow.evaluate_fault(&fault, 2).expect("evaluate").ndf;
    assert!((a - b).abs() < 0.01, "exact {a} vs quantized {b}");
}
