//! Property test of the shared-stimulus batched capture fast path: over
//! random setups (sample rate, monitor bandwidth, capture clock, measurement
//! noise) and random lots (deviations, seeds, batch sizes), batched capture
//! must be bit-identical to the per-device reference path — signature by
//! signature, entry by entry.

use analog_signature::dsig::{
    capture_signatures_batch, BatchDevice, CaptureClock, SharedStimulus, StimulusBank, TestSetup,
};
use analog_signature::filters::BiquadParams;
use analog_signature::signal::NoiseModel;
use proptest::prelude::*;

/// Materializes a random-but-valid observation setup from generated knobs.
fn setup_from(rate_step: u32, bandwidth_khz: u32, clock_bits: u32, noise_sigma_mv: f64) -> TestSetup {
    let mut setup = TestSetup::paper_default()
        .expect("setup")
        // 0.5, 1.0, 1.5 or 2.0 MS/s — all resolve the stimulus comfortably.
        .with_sample_rate(0.5e6 * f64::from(rate_step))
        .expect("rate");
    // 0 disables the front-end bandwidth limit; otherwise 100..=420 kHz.
    setup.monitor_bandwidth_hz = if bandwidth_khz == 0 {
        None
    } else {
        Some(f64::from(bandwidth_khz) * 1e3)
    };
    // 0 disables the capture clock (exact dwell times).
    setup.clock = if clock_bits == 0 {
        None
    } else {
        Some(CaptureClock::new(10e6, clock_bits).expect("clock"))
    };
    setup.noise = NoiseModel::new(noise_sigma_mv * 1e-3);
    setup
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn batched_capture_equals_per_device_capture(
        knobs in (1u32..5, 0u32..421, 0u32..13, 0.0..8.0f64),
        lot in prop::collection::vec((-18.0..18.0f64, 0u64..1_000_000), 1..9),
    ) {
        let (rate_step, bandwidth_khz, clock_bits, noise_sigma_mv) = knobs;
        // Sub-100 kHz bandwidths would chop into the stimulus band itself;
        // clamp the generated value into {None} ∪ [100, 420] kHz.
        let bandwidth_khz = if bandwidth_khz < 100 { 0 } else { bandwidth_khz };
        let setup = setup_from(rate_step, bandwidth_khz, clock_bits, noise_sigma_mv);

        let devices: Vec<BatchDevice> = lot
            .iter()
            .map(|&(deviation, seed)| {
                BatchDevice::new(BiquadParams::paper_default().with_f0_shift_pct(deviation), seed)
            })
            .collect();

        let shared = SharedStimulus::new(&setup).expect("shared stimulus");
        let batched = capture_signatures_batch(&setup, &shared, &devices).expect("batched capture");
        prop_assert_eq!(batched.len(), devices.len());
        for (device, batched_sig) in devices.iter().zip(&batched) {
            let per_device = setup
                .signature_of(&device.cut, device.noise_seed)
                .expect("per-device capture");
            prop_assert_eq!(batched_sig.len(), per_device.len());
            for (a, b) in batched_sig.entries().iter().zip(per_device.entries()) {
                prop_assert_eq!(a.code, b.code, "zone codes diverged");
                prop_assert_eq!(
                    a.duration.to_bits(),
                    b.duration.to_bits(),
                    "dwell times must be bit-identical"
                );
            }
        }
    }

    #[test]
    fn bank_reuse_does_not_change_results(
        deviation in -15.0..15.0f64,
        seed in 0u64..1_000_000,
    ) {
        // Fetching the shared stimulus from a bank (hit or miss) must not
        // change anything: the entry is a pure function of the setup.
        let setup = TestSetup::paper_default().expect("setup").with_sample_rate(1e6).expect("rate");
        let bank = StimulusBank::new();
        let device = [BatchDevice::new(BiquadParams::paper_default().with_f0_shift_pct(deviation), seed)];
        let first = capture_signatures_batch(&setup, &bank.shared_for(&setup).expect("miss"), &device)
            .expect("capture via miss");
        let second = capture_signatures_batch(&setup, &bank.shared_for(&setup).expect("hit"), &device)
            .expect("capture via hit");
        prop_assert_eq!(first, second);
        prop_assert_eq!(bank.misses(), 1);
        prop_assert!(bank.hits() >= 1);
    }
}
