//! Property tests of the binary codecs: random signatures and logs must
//! round-trip bit-exactly, and random truncations / byte mutations must be
//! rejected or decoded — never panic, never hang, never over-allocate.

use analog_signature::dsig::{DsigError, Signature, SignatureEntry, ZoneCode};
use analog_signature::engine::SignatureLog;
use proptest::prelude::*;

/// Builds a valid signature from generated `(code, duration-in-µs)` pairs.
fn signature_from(parts: &[(u32, f64)]) -> Signature {
    Signature::new(
        parts
            .iter()
            .map(|&(code, dur_us)| SignatureEntry {
                code: ZoneCode(code),
                duration: dur_us * 1e-6,
            })
            .collect(),
    )
    .expect("generated durations are finite and positive")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn signature_round_trips_bit_exact(parts in prop::collection::vec((0u32..64, 0.01..500.0_f64), 1..40)) {
        let signature = signature_from(&parts);
        let decoded = Signature::from_bytes(&signature.to_bytes()).unwrap();
        prop_assert_eq!(&decoded, &signature);
        for (a, b) in decoded.entries().iter().zip(signature.entries()) {
            prop_assert_eq!(a.duration.to_bits(), b.duration.to_bits());
        }
    }

    #[test]
    fn truncated_signatures_always_error(
        parts in prop::collection::vec((0u32..64, 0.01..500.0_f64), 1..20),
        cut in 0.0..1.0_f64,
    ) {
        let bytes = signature_from(&parts).to_bytes();
        let keep = (bytes.len() as f64 * cut) as usize; // strictly < len
        let result = Signature::from_bytes(&bytes[..keep]);
        prop_assert!(result.is_err(), "a {keep}-of-{} byte prefix must not decode", bytes.len());
        prop_assert!(
            matches!(result, Err(DsigError::Truncated { .. } | DsigError::Corrupt { .. })),
            "truncation must map to a dedicated codec error, got {:?}", result
        );
    }

    #[test]
    fn mutated_signatures_never_panic(
        parts in prop::collection::vec((0u32..64, 0.01..500.0_f64), 1..20),
        position in 0.0..1.0_f64,
        flip in 1u8..255,
    ) {
        let mut bytes = signature_from(&parts).to_bytes();
        let at = ((bytes.len() - 1) as f64 * position) as usize;
        bytes[at] ^= flip;
        // Any single-byte corruption either fails cleanly or decodes to some
        // valid signature (a payload flip can produce a different but legal
        // value); the property under test is the absence of panics and
        // unbounded allocations.
        if let Ok(decoded) = Signature::from_bytes(&bytes) {
            prop_assert!(decoded.entries().iter().all(|e| e.duration >= 0.0));
        }
        // Corrupting the header (magic or count) can never decode silently,
        // except a count flip on a buffer that still frames consistently —
        // impossible here because the byte length pins the entry count.
        if at < 8 {
            prop_assert!(Signature::from_bytes(&bytes).is_err());
        }
    }

    #[test]
    fn log_round_trips_and_rejects_mutations(
        lots in prop::collection::vec(
            (0u32..10_000, prop::collection::vec((0u32..64, 0.01..500.0_f64), 1..8)),
            1..12,
        ),
        position in 0.0..1.0_f64,
        flip in 1u8..255,
        cut in 0.0..1.0_f64,
    ) {
        let mut log = SignatureLog::new();
        for (index, parts) in &lots {
            log.push(*index, signature_from(parts));
        }
        let bytes = log.to_bytes();
        prop_assert_eq!(&SignatureLog::from_bytes(&bytes).unwrap(), &log);

        // Truncation: always a clean error.
        let keep = (bytes.len() as f64 * cut) as usize;
        prop_assert!(SignatureLog::from_bytes(&bytes[..keep]).is_err());

        // Mutation: never a panic. A flip inside a device-index field decodes
        // to a different log; anything structural errors out.
        let mut mutated = bytes.clone();
        let at = ((mutated.len() - 1) as f64 * position) as usize;
        mutated[at] ^= flip;
        let _ = SignatureLog::from_bytes(&mutated);
        if at < 8 {
            prop_assert!(SignatureLog::from_bytes(&mutated).is_err(), "log header corruption must error");
        }
    }
}
