//! Property tests of the binary codecs: random signatures, logs and wire
//! frames (including the router tier's `DSRM`/`DSGP`/`DSGF`/`DSRA`, the
//! `DSAQ` fleet-admin verbs with their roster responses, and the
//! observability tier's `DSMS` snapshots, `DSMX`/`DSMR` scrape pair, `DSTL`
//! trace logs, `DSTX`/`DSTD` trace scrape pair, `DSEL` event logs with
//! their `DSEX`/`DSED` drain pair, the `DSHC` health-check pair and the
//! `DSFM`/`DSFT` fleet-scrape requests) must round-trip bit-exactly, and
//! random truncations / byte mutations must be rejected or decoded — never
//! panic, never hang, never over-allocate.

use analog_signature::dsig::{AcceptanceBand, DsigError, Signature, SignatureEntry, ZoneCode};
use analog_signature::engine::SignatureLog;
use analog_signature::obs::{MetricsSnapshot, Registry};
use analog_signature::serve::proto;
use proptest::prelude::*;

/// Builds a valid signature from generated `(code, duration-in-µs)` pairs.
fn signature_from(parts: &[(u32, f64)]) -> Signature {
    Signature::new(
        parts
            .iter()
            .map(|&(code, dur_us)| SignatureEntry {
                code: ZoneCode(code),
                duration: dur_us * 1e-6,
            })
            .collect(),
    )
    .expect("generated durations are finite and positive")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn signature_round_trips_bit_exact(parts in prop::collection::vec((0u32..64, 0.01..500.0_f64), 1..40)) {
        let signature = signature_from(&parts);
        let decoded = Signature::from_bytes(&signature.to_bytes()).unwrap();
        prop_assert_eq!(&decoded, &signature);
        for (a, b) in decoded.entries().iter().zip(signature.entries()) {
            prop_assert_eq!(a.duration.to_bits(), b.duration.to_bits());
        }
    }

    #[test]
    fn truncated_signatures_always_error(
        parts in prop::collection::vec((0u32..64, 0.01..500.0_f64), 1..20),
        cut in 0.0..1.0_f64,
    ) {
        let bytes = signature_from(&parts).to_bytes();
        let keep = (bytes.len() as f64 * cut) as usize; // strictly < len
        let result = Signature::from_bytes(&bytes[..keep]);
        prop_assert!(result.is_err(), "a {keep}-of-{} byte prefix must not decode", bytes.len());
        prop_assert!(
            matches!(result, Err(DsigError::Truncated { .. } | DsigError::Corrupt { .. })),
            "truncation must map to a dedicated codec error, got {:?}", result
        );
    }

    #[test]
    fn mutated_signatures_never_panic(
        parts in prop::collection::vec((0u32..64, 0.01..500.0_f64), 1..20),
        position in 0.0..1.0_f64,
        flip in 1u8..255,
    ) {
        let mut bytes = signature_from(&parts).to_bytes();
        let at = ((bytes.len() - 1) as f64 * position) as usize;
        bytes[at] ^= flip;
        // Any single-byte corruption either fails cleanly or decodes to some
        // valid signature (a payload flip can produce a different but legal
        // value); the property under test is the absence of panics and
        // unbounded allocations.
        if let Ok(decoded) = Signature::from_bytes(&bytes) {
            prop_assert!(decoded.entries().iter().all(|e| e.duration >= 0.0));
        }
        // Corrupting the header (magic or count) can never decode silently,
        // except a count flip on a buffer that still frames consistently —
        // impossible here because the byte length pins the entry count.
        if at < 8 {
            prop_assert!(Signature::from_bytes(&bytes).is_err());
        }
    }

    #[test]
    fn multi_screen_requests_round_trip_and_survive_abuse(
        items in prop::collection::vec(
            (0u64..u64::MAX, prop::collection::vec((0u32..64, 0.01..500.0_f64), 1..8)),
            0..10,
        ),
        position in 0.0..1.0_f64,
        flip in 1u8..255,
        cut in 0.0..1.0_f64,
    ) {
        let items: Vec<(u64, Signature)> = items
            .iter()
            .map(|(key, parts)| (*key, signature_from(parts)))
            .collect();
        let bytes = proto::encode_multi_request(&items);
        let decoded = proto::decode_multi_request(&bytes).unwrap();
        prop_assert_eq!(&decoded.items, &items);
        for ((_, a), (_, b)) in decoded.items.iter().zip(&items) {
            for (x, y) in a.entries().iter().zip(b.entries()) {
                prop_assert_eq!(x.duration.to_bits(), y.duration.to_bits());
            }
        }
        // Truncation: always a clean error (the empty request is 10 bytes).
        let keep = (bytes.len() as f64 * cut) as usize;
        prop_assert!(proto::decode_multi_request(&bytes[..keep]).is_err());
        // Mutation: never a panic; header corruption always errors.
        let mut mutated = bytes.clone();
        let at = ((mutated.len() - 1) as f64 * position) as usize;
        mutated[at] ^= flip;
        let _ = proto::decode_multi_request(&mutated);
        let _ = proto::decode_any_request(&mutated);
        if at < 6 {
            prop_assert!(proto::decode_multi_request(&mutated).is_err());
        }
    }

    #[test]
    fn push_fetch_and_admin_frames_round_trip_and_survive_abuse(
        key in 0u64..u64::MAX,
        threshold in 0.0..10.0_f64,
        parts in prop::collection::vec((0u32..64, 0.01..500.0_f64), 1..10),
        position in 0.0..1.0_f64,
        flip in 1u8..255,
        cut in 0.0..1.0_f64,
    ) {
        let band = AcceptanceBand::new(threshold).unwrap();
        let golden = signature_from(&parts);
        for bytes in [
            proto::encode_push_request(key, band, &golden),
            proto::encode_fetch_request(key),
            // The DSAQ fleet-admin family: all four verbs, including a
            // generated host:port label and the empty label.
            proto::encode_admin_request(&proto::AdminRequest::Join {
                label: format!("10.0.{}.{}:{}", key % 256, (key >> 8) % 256, 1024 + key % 50_000),
            }),
            proto::encode_admin_request(&proto::AdminRequest::Leave { label: "local-1".into() }),
            proto::encode_admin_request(&proto::AdminRequest::Drain { label: String::new() }),
            proto::encode_admin_request(&proto::AdminRequest::List),
            proto::encode_admin_response(&proto::AdminResponse::Ack),
            proto::encode_admin_response(&proto::AdminResponse::Record { band, golden: golden.clone() }),
            proto::encode_admin_response(&proto::AdminResponse::Roster(proto::FleetRoster {
                epoch: key,
                entries: vec![
                    proto::RosterEntry {
                        label: "10.0.0.1:9000".into(),
                        id: key ^ 1,
                        state: proto::BackendState::Active,
                    },
                    proto::RosterEntry {
                        label: "local-1".into(),
                        id: 1,
                        state: proto::BackendState::Draining,
                    },
                    proto::RosterEntry {
                        label: "local-2".into(),
                        id: 2,
                        state: proto::BackendState::BackedOff,
                    },
                ],
            })),
            proto::encode_admin_response(&proto::AdminResponse::Error {
                code: proto::ErrorCode::Internal,
                message: "x".into(),
            }),
        ] {
            // Round trip through the matching decoder.
            match bytes.get(..4) {
                Some(magic) if *magic == proto::ADMIN_RESPONSE_MAGIC => {
                    prop_assert_eq!(
                        proto::encode_admin_response(&proto::decode_admin_response(&bytes).unwrap()),
                        bytes.clone()
                    );
                }
                _ => {
                    let decoded = proto::decode_any_request(&bytes).unwrap();
                    match &decoded {
                        proto::Request::PushGolden { key: k, band: b, golden: g } => {
                            prop_assert_eq!(*k, key);
                            prop_assert_eq!(b.ndf_threshold.to_bits(), band.ndf_threshold.to_bits());
                            prop_assert_eq!(g, &golden);
                        }
                        proto::Request::FetchGolden { key: k } => prop_assert_eq!(*k, key),
                        proto::Request::Admin(request) => {
                            prop_assert_eq!(proto::encode_admin_request(request), bytes.clone());
                        }
                        other => prop_assert!(false, "unexpected request kind {:?}", other),
                    }
                }
            }
            // Truncation: always a clean error (every frame is > 6 bytes).
            let keep = (bytes.len() as f64 * cut) as usize;
            prop_assert!(proto::decode_any_request(&bytes[..keep]).is_err());
            prop_assert!(proto::decode_admin_response(&bytes[..keep]).is_err());
            // Mutation: never a panic; header corruption always errors.
            let mut mutated = bytes.clone();
            let at = ((mutated.len() - 1) as f64 * position) as usize;
            mutated[at] ^= flip;
            let _ = proto::decode_any_request(&mutated);
            let _ = proto::decode_admin_response(&mutated);
            if at < 6 {
                prop_assert!(
                    proto::decode_any_request(&mutated).is_err() && proto::decode_admin_response(&mutated).is_err()
                );
            }
        }
    }

    #[test]
    fn retest_requests_round_trip_and_survive_abuse(
        key in 0u64..u64::MAX,
        guard_milli in 0u32..50,
        steps in prop::collection::vec(1u32..6, 1..4),
        items in prop::collection::vec(
            (
                prop::collection::vec((0u32..64, 0.01..500.0_f64), 1..6),
                prop::collection::vec(prop::collection::vec((0u32..64, 0.01..500.0_f64), 1..4), 0..4),
            ),
            0..6,
        ),
        position in 0.0..1.0_f64,
        flip in 1u8..255,
        cut in 0.0..1.0_f64,
    ) {
        // Build a strictly increasing cumulative schedule from the step increments.
        let mut schedule = Vec::with_capacity(steps.len());
        let mut total = 0u32;
        for step in steps {
            total += step;
            schedule.push(total);
        }
        let request = analog_signature::serve::RetestRequest {
            golden_key: key,
            policy: analog_signature::dsig::RetestPolicy::new(f64::from(guard_milli) / 1000.0, schedule).unwrap(),
            items: items
                .iter()
                .map(|(initial, repeats)| analog_signature::serve::RetestItem {
                    initial: signature_from(initial),
                    repeats: repeats.iter().map(|parts| signature_from(parts)).collect(),
                })
                .collect(),
        };
        let bytes = proto::encode_retest_request(&request);
        let decoded = proto::decode_retest_request(&bytes).unwrap();
        prop_assert_eq!(&decoded, &request);
        prop_assert_eq!(
            decoded.policy.guard_band.to_bits(),
            request.policy.guard_band.to_bits()
        );
        match proto::decode_any_request(&bytes).unwrap() {
            proto::Request::Retest(dispatched) => prop_assert_eq!(dispatched, request),
            other => prop_assert!(false, "expected Retest, got {:?}", other),
        }
        // Truncation: always a clean error (the empty request is > 22 bytes).
        let keep = (bytes.len() as f64 * cut) as usize;
        prop_assert!(proto::decode_retest_request(&bytes[..keep]).is_err());
        // Mutation: never a panic; header corruption always errors.
        let mut mutated = bytes.clone();
        let at = ((mutated.len() - 1) as f64 * position) as usize;
        mutated[at] ^= flip;
        let _ = proto::decode_retest_request(&mutated);
        let _ = proto::decode_any_request(&mutated);
        if at < 6 {
            prop_assert!(proto::decode_retest_request(&mutated).is_err());
        }
    }

    #[test]
    fn retest_responses_round_trip_and_survive_abuse(
        scores in prop::collection::vec(
            (0.0..2.0_f64, 0u32..50, prop::bool::ANY, prop::bool::ANY, prop::bool::ANY, 0u32..64),
            0..10,
        ),
        position in 0.0..1.0_f64,
        flip in 1u8..255,
        cut in 0.0..1.0_f64,
    ) {
        use analog_signature::dsig::TestOutcome;
        let response = proto::RetestResponse::Results(
            scores
                .iter()
                .map(|&(ndf, peak, fail, marginal, flipped, repeats)| proto::RetestScore {
                    score: proto::ScoreResult {
                        ndf,
                        peak_hamming: peak,
                        outcome: if fail { TestOutcome::Fail } else { TestOutcome::Pass },
                    },
                    marginal,
                    flipped,
                    repeats_used: repeats,
                })
                .collect(),
        );
        let bytes = proto::encode_retest_response(&response);
        prop_assert_eq!(&proto::decode_retest_response(&bytes).unwrap(), &response);
        // Truncation: always a clean error.
        let keep = (bytes.len() as f64 * cut) as usize;
        prop_assert!(proto::decode_retest_response(&bytes[..keep]).is_err());
        // Mutation: never a panic; header corruption always errors.
        let mut mutated = bytes.clone();
        let at = ((mutated.len() - 1) as f64 * position) as usize;
        mutated[at] ^= flip;
        let _ = proto::decode_retest_response(&mutated);
        if at < 6 {
            prop_assert!(proto::decode_retest_response(&mutated).is_err());
        }
    }

    #[test]
    fn metrics_snapshots_round_trip_and_survive_abuse(
        counters in prop::collection::vec(0u64..u64::MAX, 0..6),
        gauges in prop::collection::vec(-1e12..1e12_f64, 0..6),
        samples in prop::collection::vec(prop::collection::vec(0u64..10_000_000, 0..20), 0..4),
        position in 0.0..1.0_f64,
        flip in 1u8..255,
        cut in 0.0..1.0_f64,
    ) {
        // Populate a private registry (not the process-global one, which
        // other tests mutate concurrently) with generated metrics.
        let registry = Registry::new();
        for (i, v) in counters.iter().enumerate() {
            registry.counter(&format!("c{i:02}.count")).add(*v);
        }
        for (i, v) in gauges.iter().enumerate() {
            registry.gauge(&format!("g{i:02}.level")).set(*v);
        }
        for (i, values) in samples.iter().enumerate() {
            let histogram = registry.histogram(&format!("h{i:02}.us"));
            for v in values {
                histogram.record_us(*v);
            }
        }
        let snapshot = registry.snapshot();
        let bytes = snapshot.to_bytes();
        let decoded = MetricsSnapshot::from_bytes(&bytes).unwrap();
        // Bit-exact: every value survives, and re-encoding is byte-identical.
        for (i, v) in counters.iter().enumerate() {
            prop_assert_eq!(decoded.counter(&format!("c{i:02}.count")), Some(*v));
        }
        for (i, v) in gauges.iter().enumerate() {
            prop_assert_eq!(
                decoded.gauge(&format!("g{i:02}.level")).map(f64::to_bits),
                Some(v.to_bits())
            );
        }
        for (i, values) in samples.iter().enumerate() {
            let histogram = decoded.histogram(&format!("h{i:02}.us")).unwrap();
            prop_assert_eq!(histogram.count, values.len() as u64);
            prop_assert_eq!(histogram.sum_us, values.iter().fold(0u64, |a, &v| a.wrapping_add(v)));
        }
        prop_assert_eq!(decoded.render(), snapshot.render());
        prop_assert_eq!(decoded.to_bytes(), bytes.clone());
        // Truncation: always a clean error (the empty snapshot is 10 bytes).
        let keep = (bytes.len() as f64 * cut) as usize;
        prop_assert!(MetricsSnapshot::from_bytes(&bytes[..keep]).is_err());
        // Mutation: never a panic; header corruption always errors.
        let mut mutated = bytes.clone();
        let at = ((mutated.len() - 1) as f64 * position) as usize;
        mutated[at] ^= flip;
        let _ = MetricsSnapshot::from_bytes(&mutated);
        if at < 6 {
            prop_assert!(MetricsSnapshot::from_bytes(&mutated).is_err());
        }
    }

    #[test]
    fn metrics_scrape_frames_round_trip_and_survive_abuse(
        counter in 0u64..u64::MAX,
        gauge in -1e12..1e12_f64,
        samples in prop::collection::vec(0u64..10_000_000, 0..20),
        message_bytes in prop::collection::vec(0x20u8..0x7f, 0..40),
        position in 0.0..1.0_f64,
        flip in 1u8..255,
        cut in 0.0..1.0_f64,
    ) {
        let message = String::from_utf8(message_bytes).unwrap();
        // The DSMX request is header-only and dispatches like every other
        // request family.
        let request = proto::encode_metrics_request();
        match proto::decode_any_request(&request).unwrap() {
            proto::Request::Metrics => {}
            other => prop_assert!(false, "expected Metrics, got {:?}", other),
        }
        let registry = Registry::new();
        registry.counter("scrape.count").add(counter);
        registry.gauge("scrape.level").set(gauge);
        let histogram = registry.histogram("scrape.us");
        for v in &samples {
            histogram.record_us(*v);
        }
        for response in [
            proto::MetricsResponse::Snapshot(registry.snapshot()),
            proto::MetricsResponse::Error {
                code: proto::ErrorCode::Internal,
                message,
            },
        ] {
            let bytes = proto::encode_metrics_response(&response);
            let decoded = proto::decode_metrics_response(&bytes).unwrap();
            prop_assert_eq!(proto::encode_metrics_response(&decoded), bytes.clone());
            if let (
                proto::MetricsResponse::Snapshot(got),
                proto::MetricsResponse::Snapshot(sent),
            ) = (&decoded, &response)
            {
                prop_assert_eq!(got.counter("scrape.count"), sent.counter("scrape.count"));
                prop_assert_eq!(
                    got.gauge("scrape.level").map(f64::to_bits),
                    sent.gauge("scrape.level").map(f64::to_bits)
                );
            }
            // Truncation: always a clean error (every frame is > 6 bytes).
            let keep = (bytes.len() as f64 * cut) as usize;
            prop_assert!(proto::decode_metrics_response(&bytes[..keep]).is_err());
            // Mutation: never a panic; header corruption always errors.
            let mut mutated = bytes.clone();
            let at = ((mutated.len() - 1) as f64 * position) as usize;
            mutated[at] ^= flip;
            let _ = proto::decode_metrics_response(&mutated);
            if at < 6 {
                prop_assert!(proto::decode_metrics_response(&mutated).is_err());
            }
        }
        // Truncating or corrupting the request header errors too.
        let keep = (request.len() as f64 * cut) as usize;
        prop_assert!(proto::decode_metrics_request(&request[..keep]).is_err());
        let mut mutated = request.clone();
        let at = ((mutated.len() - 1) as f64 * position) as usize;
        mutated[at] ^= flip;
        if at < 6 {
            // Magic/version corruption always errors; bytes 6..14 are the
            // opaque request id, which any value is legal for.
            prop_assert!(proto::decode_metrics_request(&mutated).is_err());
        } else {
            prop_assert!(proto::decode_metrics_request(&mutated).is_ok());
            prop_assert_eq!(proto::peek_request_id(&mutated) == 0, mutated[6..14] == [0; 8]);
        }
    }

    #[test]
    fn trace_log_and_scrape_frames_round_trip_and_survive_abuse(
        spans in prop::collection::vec(
            (
                // trace id (never 0), span id (never 0), parent (0 = root)
                (1u64..u64::MAX, 1u64..u64::MAX, 0u64..u64::MAX),
                // name, tier
                (prop::collection::vec(0x20u8..0x7f, 1..16), prop::collection::vec(0x20u8..0x7f, 1..8)),
                // start µs, duration µs
                (0u64..1_000_000, 0u64..1_000_000),
                prop::collection::vec(
                    (prop::collection::vec(0x20u8..0x7f, 1..8), prop::collection::vec(0x20u8..0x7f, 0..8)),
                    0..4,
                ),
            ),
            0..8,
        ),
        message_bytes in prop::collection::vec(0x20u8..0x7f, 0..40),
        position in 0.0..1.0_f64,
        flip in 1u8..255,
        cut in 0.0..1.0_f64,
    ) {
        use analog_signature::obs::{SpanRecord, TraceLog};
        let log = TraceLog {
            spans: spans
                .iter()
                .map(|((trace_id, span_id, parent), (name, tier), (start, dur), annotations)| SpanRecord {
                    trace_id: *trace_id,
                    span_id: *span_id,
                    parent_span: *parent,
                    name: String::from_utf8(name.clone()).unwrap(),
                    tier: String::from_utf8(tier.clone()).unwrap(),
                    start_us: *start,
                    end_us: start + dur,
                    annotations: annotations
                        .iter()
                        .map(|(k, v)| {
                            (String::from_utf8(k.clone()).unwrap(), String::from_utf8(v.clone()).unwrap())
                        })
                        .collect(),
                })
                .collect(),
        };
        // The standalone DSTL log round-trips bit-exactly.
        let bytes = log.to_bytes();
        prop_assert_eq!(&TraceLog::from_bytes(&bytes).unwrap(), &log);
        // Truncation: always a clean error (the empty log is 10 bytes).
        let keep = (bytes.len() as f64 * cut) as usize;
        prop_assert!(TraceLog::from_bytes(&bytes[..keep]).is_err());
        // Mutation: never a panic; header corruption always errors.
        let mut mutated = bytes.clone();
        let at = ((mutated.len() - 1) as f64 * position) as usize;
        mutated[at] ^= flip;
        let _ = TraceLog::from_bytes(&mutated);
        if at < 6 {
            prop_assert!(TraceLog::from_bytes(&mutated).is_err());
        }

        // The DSTX request is header-only and dispatches like every other
        // request family.
        let request = proto::encode_traces_request();
        match proto::decode_any_request(&request).unwrap() {
            proto::Request::Traces => {}
            other => prop_assert!(false, "expected Traces, got {:?}", other),
        }
        let keep = (request.len() as f64 * cut) as usize;
        prop_assert!(proto::decode_traces_request(&request[..keep]).is_err());
        let mut mutated = request.clone();
        let at = ((mutated.len() - 1) as f64 * position) as usize;
        mutated[at] ^= flip;
        if at < 6 {
            // As for DSMX: only the magic/version bytes are load-bearing;
            // the request id (6..14) is an opaque correlator.
            prop_assert!(proto::decode_traces_request(&mutated).is_err());
        } else {
            prop_assert!(proto::decode_traces_request(&mutated).is_ok());
        }

        // Both DSTD response arms round-trip and reject abuse.
        let message = String::from_utf8(message_bytes).unwrap();
        for response in [
            proto::TracesResponse::Log(log),
            proto::TracesResponse::Error {
                code: proto::ErrorCode::Internal,
                message,
            },
        ] {
            let bytes = proto::encode_traces_response(&response);
            let decoded = proto::decode_traces_response(&bytes).unwrap();
            prop_assert_eq!(proto::encode_traces_response(&decoded), bytes.clone());
            let keep = (bytes.len() as f64 * cut) as usize;
            prop_assert!(proto::decode_traces_response(&bytes[..keep]).is_err());
            let mut mutated = bytes.clone();
            let at = ((mutated.len() - 1) as f64 * position) as usize;
            mutated[at] ^= flip;
            let _ = proto::decode_traces_response(&mutated);
            if at < 6 {
                prop_assert!(proto::decode_traces_response(&mutated).is_err());
            }
        }
    }

    #[test]
    fn event_logs_and_drain_frames_round_trip_and_survive_abuse(
        records in prop::collection::vec(
            (
                // level tag, (tier, name, message), fields, (at µs, trace id)
                0u8..3,
                (
                    prop::collection::vec(0x20u8..0x7f, 1..8),
                    prop::collection::vec(0x20u8..0x7f, 1..16),
                    prop::collection::vec(0x20u8..0x7f, 0..24),
                ),
                prop::collection::vec(
                    (prop::collection::vec(0x20u8..0x7f, 1..8), prop::collection::vec(0x20u8..0x7f, 0..8)),
                    0..4,
                ),
                (0u64..1_000_000_000, 0u64..u64::MAX),
            ),
            0..8,
        ),
        message_bytes in prop::collection::vec(0x20u8..0x7f, 0..40),
        position in 0.0..1.0_f64,
        flip in 1u8..255,
        cut in 0.0..1.0_f64,
    ) {
        use analog_signature::obs::{EventLevel, EventLog, EventRecord};
        let log = EventLog {
            events: records
                .iter()
                .map(|(level, (tier, name, message), fields, (at_us, trace_id))| EventRecord {
                    level: EventLevel::from_u8(*level).unwrap(),
                    tier: String::from_utf8(tier.clone()).unwrap(),
                    name: String::from_utf8(name.clone()).unwrap(),
                    message: String::from_utf8(message.clone()).unwrap(),
                    fields: fields
                        .iter()
                        .map(|(k, v)| {
                            (String::from_utf8(k.clone()).unwrap(), String::from_utf8(v.clone()).unwrap())
                        })
                        .collect(),
                    at_us: *at_us,
                    trace_id: *trace_id,
                })
                .collect(),
        };
        // The standalone DSEL log round-trips bit-exactly.
        let bytes = log.to_bytes();
        prop_assert_eq!(&EventLog::from_bytes(&bytes).unwrap(), &log);
        // Truncation: always a clean error (the empty log is 10 bytes).
        let keep = (bytes.len() as f64 * cut) as usize;
        prop_assert!(EventLog::from_bytes(&bytes[..keep]).is_err());
        // Mutation: never a panic; header corruption always errors.
        let mut mutated = bytes.clone();
        let at = ((mutated.len() - 1) as f64 * position) as usize;
        mutated[at] ^= flip;
        let _ = EventLog::from_bytes(&mutated);
        if at < 6 {
            prop_assert!(EventLog::from_bytes(&mutated).is_err());
        }

        // The DSEX request is header-only and dispatches like every other
        // request family.
        let request = proto::encode_events_request();
        match proto::decode_any_request(&request).unwrap() {
            proto::Request::Events => {}
            other => prop_assert!(false, "expected Events, got {:?}", other),
        }
        let keep = (request.len() as f64 * cut) as usize;
        prop_assert!(proto::decode_events_request(&request[..keep]).is_err());

        // Both DSED response arms round-trip and reject abuse.
        let message = String::from_utf8(message_bytes).unwrap();
        for response in [
            proto::EventsResponse::Log(log),
            proto::EventsResponse::Error {
                code: proto::ErrorCode::Internal,
                message,
            },
        ] {
            let bytes = proto::encode_events_response(&response);
            let decoded = proto::decode_events_response(&bytes).unwrap();
            prop_assert_eq!(proto::encode_events_response(&decoded), bytes.clone());
            let keep = (bytes.len() as f64 * cut) as usize;
            prop_assert!(proto::decode_events_response(&bytes[..keep]).is_err());
            let mut mutated = bytes.clone();
            let at = ((mutated.len() - 1) as f64 * position) as usize;
            mutated[at] ^= flip;
            let _ = proto::decode_events_response(&mutated);
            if at < 6 {
                prop_assert!(proto::decode_events_response(&mutated).is_err());
            }
        }
    }

    #[test]
    fn health_frames_round_trip_and_survive_abuse(
        status in 0u8..3,
        error_rate in 0.0..1.0_f64,
        p99_us in 0u64..10_000_000,
        backed_off in 0u32..8,
        extra_backends in 0u32..8,
        epoch in 0u64..u64::MAX,
        findings in prop::collection::vec(prop::collection::vec(0x20u8..0x7f, 0..32), 0..4),
        message_bytes in prop::collection::vec(0x20u8..0x7f, 0..40),
        position in 0.0..1.0_f64,
        flip in 1u8..255,
        cut in 0.0..1.0_f64,
    ) {
        use analog_signature::obs::{HealthReport, HealthStatus};
        // The DSHC request is header-only and dispatches like every other
        // request family.
        let request = proto::encode_health_request();
        match proto::decode_any_request(&request).unwrap() {
            proto::Request::Health => {}
            other => prop_assert!(false, "expected Health, got {:?}", other),
        }
        let keep = (request.len() as f64 * cut) as usize;
        prop_assert!(proto::decode_health_request(&request[..keep]).is_err());

        // Both response arms round-trip and reject abuse; the error rate is
        // a bit-exact f64.
        let report = HealthReport {
            status: HealthStatus::from_u8(status).unwrap(),
            error_rate,
            p99_us,
            backed_off,
            backends: backed_off + extra_backends,
            epoch,
            findings: findings.iter().map(|f| String::from_utf8(f.clone()).unwrap()).collect(),
        };
        let message = String::from_utf8(message_bytes).unwrap();
        for response in [
            proto::HealthResponse::Report(report),
            proto::HealthResponse::Error {
                code: proto::ErrorCode::Internal,
                message,
            },
        ] {
            let bytes = proto::encode_health_response(&response);
            let decoded = proto::decode_health_response(&bytes).unwrap();
            prop_assert_eq!(proto::encode_health_response(&decoded), bytes.clone());
            if let (proto::HealthResponse::Report(got), proto::HealthResponse::Report(sent)) =
                (&decoded, &response)
            {
                prop_assert_eq!(got.error_rate.to_bits(), sent.error_rate.to_bits());
            }
            let keep = (bytes.len() as f64 * cut) as usize;
            prop_assert!(proto::decode_health_response(&bytes[..keep]).is_err());
            let mut mutated = bytes.clone();
            let at = ((mutated.len() - 1) as f64 * position) as usize;
            mutated[at] ^= flip;
            let _ = proto::decode_health_response(&mutated);
            if at < 6 {
                prop_assert!(proto::decode_health_response(&mutated).is_err());
            }
        }
    }

    #[test]
    fn fleet_scrape_requests_dispatch_and_survive_abuse(
        position in 0.0..1.0_f64,
        flip in 1u8..255,
        cut in 0.0..1.0_f64,
    ) {
        for (request, is_metrics) in [
            (proto::encode_fleet_metrics_request(), true),
            (proto::encode_fleet_traces_request(), false),
        ] {
            match proto::decode_any_request(&request).unwrap() {
                proto::Request::FleetMetrics => prop_assert!(is_metrics),
                proto::Request::FleetTraces => prop_assert!(!is_metrics),
                other => prop_assert!(false, "unexpected request kind {:?}", other),
            }
            // Truncation: always a clean error (the request is 14 bytes).
            let keep = (request.len() as f64 * cut) as usize;
            prop_assert!(proto::decode_any_request(&request[..keep]).is_err());
            // Mutation: corrupting the magic or version means the frame no
            // longer decodes as the family it was encoded as (a magic flip
            // may legally land on a *different* family's magic); the id
            // bytes (6..14) are an opaque correlator.
            let mut mutated = request.clone();
            let at = ((mutated.len() - 1) as f64 * position) as usize;
            mutated[at] ^= flip;
            let same_family = if is_metrics {
                proto::decode_fleet_metrics_request(&mutated).is_ok()
            } else {
                proto::decode_fleet_traces_request(&mutated).is_ok()
            };
            if at < 6 {
                prop_assert!(!same_family);
            } else {
                prop_assert!(same_family);
                prop_assert_eq!(proto::peek_request_id(&mutated) == 0, mutated[6..14] == [0u8; 8]);
            }
        }
    }

    #[test]
    fn tagged_request_headers_round_trip_and_decode_across_versions(
        key in 0u64..u64::MAX,
        id in 1u64..u64::MAX,
        parts in prop::collection::vec((0u32..64, 0.01..500.0_f64), 1..6),
        cut in 0.0..1.0_f64,
        position in 0.0..1.0_f64,
        flip in 1u8..255,
    ) {
        use analog_signature::dsig::wire;
        use analog_signature::obs::trace::{put_trace_context, TraceContext};

        // A v3 work request: header, request id, trace context, body. The
        // encoder emits the placeholder id 0; stamping patches bytes 6..14
        // in place and must not disturb the decoded body.
        let signature = signature_from(&parts);
        let mut tagged = proto::encode_request(key, std::slice::from_ref(&signature));
        let reference = proto::decode_request(&tagged).unwrap();
        prop_assert_eq!(proto::peek_request_id(&tagged), 0);
        proto::stamp_request_id(&mut tagged, id);
        prop_assert_eq!(proto::peek_request_id(&tagged), id);
        prop_assert!(proto::request_is_tagged(&tagged));
        let decoded = proto::decode_request(&tagged).unwrap();
        prop_assert_eq!(&decoded, &reference);
        for (a, b) in decoded.signatures[0].entries().iter().zip(reference.signatures[0].entries()) {
            prop_assert_eq!(a.duration.to_bits(), b.duration.to_bits());
        }

        // Cross-version decode: the same body framed as v2 (trace context,
        // no id) and v1 (bare) must still decode, as the untagged id 0 with
        // the historical one-in-flight semantics.
        let body = &tagged[14 + 17..];
        let mut v2 = Vec::new();
        wire::put_header(&mut v2, proto::REQUEST_MAGIC, 2);
        put_trace_context(&mut v2, TraceContext::NONE);
        v2.extend_from_slice(body);
        let mut v1 = Vec::new();
        wire::put_header(&mut v1, proto::REQUEST_MAGIC, 1);
        v1.extend_from_slice(body);
        for old in [&v2, &v1] {
            prop_assert!(!proto::request_is_tagged(old));
            prop_assert_eq!(proto::peek_request_id(old), 0);
            prop_assert_eq!(&proto::decode_request(old).unwrap(), &reference);
        }

        // Truncation anywhere — including inside the id — is a clean error.
        let keep = (tagged.len() as f64 * cut) as usize;
        let truncated = proto::decode_request(&tagged[..keep]);
        prop_assert!(matches!(
            truncated,
            Err(analog_signature::serve::ServeError::Dsig(
                DsigError::Truncated { .. } | DsigError::Corrupt { .. }
            ))
        ));
        // Mutating the opaque id bytes only changes the peeked correlator;
        // the body still decodes to the same request.
        let mut mutated = tagged.clone();
        let at = 6 + ((7.999 * position) as usize);
        mutated[at] ^= flip;
        prop_assert_ne!(proto::peek_request_id(&mutated), id);
        prop_assert_eq!(&proto::decode_request(&mutated).unwrap(), &reference);
    }

    #[test]
    fn wire_tagged_headers_round_trip_and_reject_abuse(
        version in 0u16..8,
        max_version in 1u16..8,
        tagged_from in 1u16..8,
        id in 0u64..u64::MAX,
        trailer in prop::collection::vec(0u8..255, 0..8),
    ) {
        use analog_signature::dsig::wire::{self, ByteReader};
        let magic = *b"DSQQ";
        let mut frame = Vec::new();
        if version >= tagged_from {
            wire::put_tagged_header(&mut frame, magic, version, id);
        } else {
            wire::put_header(&mut frame, magic, version);
        }
        frame.extend_from_slice(&trailer);

        let mut reader = ByteReader::new(&frame, "proptest frame");
        let result = reader.tagged_header(magic, max_version, tagged_from);
        if version == 0 || version > max_version {
            // Version 0 and future versions are rejected before the id is
            // ever touched.
            prop_assert!(result.is_err());
        } else if version >= tagged_from {
            prop_assert_eq!(result.unwrap(), (version, id));
            prop_assert_eq!(reader.remaining(), trailer.len());
        } else {
            // Untagged versions read as id 0 without consuming body bytes.
            prop_assert_eq!(result.unwrap(), (version, 0));
            prop_assert_eq!(reader.remaining(), trailer.len());
        }

        // A tagged header truncated inside the id region is a clean
        // Truncated error, never a panic or a garbage id.
        if version >= tagged_from && version <= max_version && version > 0 {
            for keep in 6..14 {
                let mut reader = ByteReader::new(&frame[..keep], "proptest frame");
                prop_assert!(matches!(
                    reader.tagged_header(magic, max_version, tagged_from),
                    Err(DsigError::Truncated { .. })
                ));
            }
        }
        // The wrong magic is rejected whatever the version says.
        let mut reader = ByteReader::new(&frame, "proptest frame");
        prop_assert!(reader.tagged_header(*b"XXXX", max_version, tagged_from).is_err());
    }

    #[test]
    fn log_round_trips_and_rejects_mutations(
        lots in prop::collection::vec(
            (0u32..10_000, prop::collection::vec((0u32..64, 0.01..500.0_f64), 1..8)),
            1..12,
        ),
        position in 0.0..1.0_f64,
        flip in 1u8..255,
        cut in 0.0..1.0_f64,
    ) {
        let mut log = SignatureLog::new();
        for (index, parts) in &lots {
            log.push(*index, signature_from(parts));
        }
        let bytes = log.to_bytes();
        prop_assert_eq!(&SignatureLog::from_bytes(&bytes).unwrap(), &log);

        // Truncation: always a clean error.
        let keep = (bytes.len() as f64 * cut) as usize;
        prop_assert!(SignatureLog::from_bytes(&bytes[..keep]).is_err());

        // Mutation: never a panic. A flip inside a device-index field decodes
        // to a different log; anything structural errors out.
        let mut mutated = bytes.clone();
        let at = ((mutated.len() - 1) as f64 * position) as usize;
        mutated[at] ^= flip;
        let _ = SignatureLog::from_bytes(&mutated);
        if at < 8 {
            prop_assert!(SignatureLog::from_bytes(&mutated).is_err(), "log header corruption must error");
        }
    }
}
