//! Determinism of the parallel campaign engine: a multi-threaded campaign
//! over a Monte-Carlo population must produce NDFs bit-identical to the
//! plain serial loop, at every thread count.

use analog_signature::dsig::{ndf, peak_hamming_distance, AcceptanceBand, TestFlow, TestSetup};
use analog_signature::engine::{Campaign, CampaignRunner, DevicePopulation};
use analog_signature::filters::BiquadParams;
use analog_signature::signal::NoiseModel;

const DEVICES: usize = 64;

fn campaign() -> Campaign {
    let setup = TestSetup::paper_default()
        .expect("setup")
        .with_sample_rate(1e6)
        .expect("rate")
        .with_noise(NoiseModel::paper_default());
    Campaign::new(
        setup,
        BiquadParams::paper_default(),
        DevicePopulation::MonteCarlo {
            devices: DEVICES,
            sigma_pct: 4.0,
        },
        AcceptanceBand::new(0.03).expect("band"),
        3.0,
    )
    .expect("campaign")
    .with_seed(20260727)
}

/// The reference implementation the engine must reproduce bit-for-bit: a
/// plain serial loop over `Campaign::device`, scored against a golden
/// signature characterized directly with `TestFlow::new`.
fn serial_reference_ndfs(campaign: &Campaign) -> Vec<f64> {
    let noiseless = TestSetup {
        noise: NoiseModel::none(),
        ..campaign.setup.clone()
    };
    let flow = TestFlow::new(noiseless, campaign.reference).expect("flow");
    (0..campaign.device_count())
        .map(|i| {
            let spec = campaign.device(i).expect("device");
            let observed = campaign
                .setup
                .signature_of(&spec.cut, spec.noise_seed)
                .expect("signature");
            let _ = peak_hamming_distance(flow.golden(), &observed).expect("peak");
            ndf(flow.golden(), &observed).expect("ndf")
        })
        .collect()
}

#[test]
fn parallel_campaign_matches_serial_loop_bit_for_bit() {
    let campaign = campaign();
    let reference = serial_reference_ndfs(&campaign);
    assert_eq!(reference.len(), DEVICES);
    // The population must be non-trivial: both passing and failing devices.
    assert!(reference.iter().any(|&n| n > 0.03), "lot has no failing device");
    assert!(reference.iter().any(|&n| n < 0.03), "lot has no passing device");

    for threads in [1usize, 2, 8] {
        let report = CampaignRunner::with_threads(threads)
            .with_chunk_size(7) // deliberately uneven chunking
            .run(&campaign)
            .expect("campaign run");
        assert_eq!(report.devices(), DEVICES);
        let ndfs: Vec<f64> = report.results.iter().map(|r| r.ndf).collect();
        assert_eq!(
            ndfs.iter().map(|n| n.to_bits()).collect::<Vec<_>>(),
            reference.iter().map(|n| n.to_bits()).collect::<Vec<_>>(),
            "NDFs at {threads} thread(s) differ from the serial loop"
        );
        // Device order and identity are preserved, not just the multiset.
        for (i, result) in report.results.iter().enumerate() {
            assert_eq!(result.index, i);
        }
    }
}

#[test]
fn batched_capture_is_bit_identical_at_every_batch_size_and_thread_count() {
    // The shared-stimulus batched fast path must reproduce the per-device
    // reference bit-for-bit at every capture batch size (= runner chunk) and
    // thread count — including under measurement noise, where each device
    // still draws its own x/y noise realisations.
    let campaign = campaign();
    let reference = CampaignRunner::with_threads(1)
        .with_batching(false)
        .run(&campaign)
        .expect("per-device reference run");
    for chunk in [1usize, 7, 64] {
        for threads in [1usize, 8] {
            let report = CampaignRunner::with_threads(threads)
                .with_chunk_size(chunk)
                .run(&campaign)
                .expect("batched run");
            assert_eq!(
                report, reference,
                "batch size {chunk} x {threads} thread(s) diverged from the per-device reference"
            );
        }
    }
}

#[test]
fn full_reports_are_identical_across_thread_counts() {
    let campaign = campaign();
    let reference = CampaignRunner::with_threads(1).run(&campaign).expect("serial run");
    for threads in [2usize, 8] {
        let report = CampaignRunner::with_threads(threads)
            .run(&campaign)
            .expect("parallel run");
        assert_eq!(report, reference, "report at {threads} threads diverged");
    }
}
