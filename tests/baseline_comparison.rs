//! Integration tests of the baseline methods against the paper's nonlinear
//! zoning: the same f0 deviations are scored by (a) the nonlinear-boundary
//! signature NDF, (b) the straight-line zoning signature NDF and (c) a raw
//! waveform-comparison metric. All three should grow with the deviation; the
//! signature-based ones share the same capture hardware model.

use analog_signature::dsig::{capture_signature, ndf, normalized_output_error, LinearZoning, TestSetup};
use analog_signature::filters::BiquadParams;
use analog_signature::signal::MultitoneSpec;

fn signatures_for(deviation_pct: f64, encoder: &dyn analog_signature::dsig::PointEncoder) -> (f64, f64) {
    // Returns (ndf for deviation, ndf for nominal) with the given encoder.
    let setup = TestSetup::paper_default().unwrap().with_sample_rate(1e6).unwrap();
    let reference = BiquadParams::paper_default();
    let (xg, yg) = setup.observe(&reference, 0);
    let golden = capture_signature(encoder, &xg, &yg, setup.clock.as_ref()).unwrap();
    let cut = reference.with_f0_shift_pct(deviation_pct);
    let (xo, yo) = setup.observe(&cut, 1);
    let observed = capture_signature(encoder, &xo, &yo, setup.clock.as_ref()).unwrap();
    let (xn, yn) = setup.observe(&reference, 2);
    let nominal = capture_signature(encoder, &xn, &yn, setup.clock.as_ref()).unwrap();
    (ndf(&golden, &observed).unwrap(), ndf(&golden, &nominal).unwrap())
}

#[test]
fn linear_zoning_also_detects_large_deviations() {
    let linear = LinearZoning::paper_comparable();
    let (ndf_10, ndf_0) = signatures_for(10.0, &linear);
    assert!(ndf_0 < 1e-9, "nominal device must score 0 with straight lines too");
    assert!(
        ndf_10 > 0.01,
        "straight-line zoning should still see a 10% shift (ndf {ndf_10})"
    );
}

#[test]
fn nonlinear_zoning_is_at_least_as_sensitive_as_straight_lines_for_small_shifts() {
    let setup_encoder = analog_signature::monitor::ZonePartition::paper_default().unwrap();
    let linear = LinearZoning::paper_comparable();
    // Average over a few small deviations to smooth out individual zone effects.
    let mut nonlinear_sum = 0.0;
    let mut linear_sum = 0.0;
    for dev in [2.0, 3.0, 4.0] {
        nonlinear_sum += signatures_for(dev, &setup_encoder).0;
        linear_sum += signatures_for(dev, &linear).0;
    }
    assert!(
        nonlinear_sum > 0.3 * linear_sum,
        "nonlinear zoning should be competitive: {nonlinear_sum} vs {linear_sum}"
    );
    assert!(nonlinear_sum > 0.0);
}

#[test]
fn rms_baseline_grows_with_deviation_like_the_ndf() {
    let stimulus = MultitoneSpec::paper_default();
    let reference = BiquadParams::paper_default();
    let golden = reference.steady_state_response(&stimulus, 1, 1e6);
    let mut last = 0.0;
    for dev in [0.0, 5.0, 10.0, 20.0] {
        let cut = reference.with_f0_shift_pct(dev);
        let out = cut.steady_state_response(&stimulus, 1, 1e6);
        let err = normalized_output_error(&golden, &out).unwrap();
        assert!(err >= last - 1e-12, "waveform error must grow with deviation");
        last = err;
    }
    assert!(last > 0.01);
}

#[test]
fn signature_compression_is_substantial_compared_to_raw_waveforms() {
    // The practical benefit of the method: the signature is a handful of
    // (code, duration) pairs instead of thousands of waveform samples.
    let setup = TestSetup::paper_default().unwrap().with_sample_rate(1e6).unwrap();
    let reference = BiquadParams::paper_default();
    let (x, y) = setup.observe(&reference, 0);
    let sig = capture_signature(&setup.partition, &x, &y, setup.clock.as_ref()).unwrap();
    let raw_samples = x.len() + y.len();
    assert!(
        sig.len() * 10 < raw_samples,
        "signature with {} entries vs {} raw samples",
        sig.len(),
        raw_samples
    );
}
