//! Acceptance test of end-to-end distributed tracing: a retest campaign
//! routed through a backend fleet must leave one **connected** span tree per
//! chunk — the engine's root `engine.chunk` span parenting the capture/
//! score/retest children, the router's screening spans beneath those, and
//! the serving tier's dispatch/shard/reassembly spans beneath the router's
//! forwards — with no orphans at any backend count. And the instrumentation
//! must be purely observational: the traced routed report stays bit-identical
//! to an untraced local run.

use std::collections::HashMap;

use analog_signature::dsig::{AcceptanceBand, RetestPolicy, TestSetup};
use analog_signature::engine::{Campaign, CampaignRunner, DevicePopulation, ScoreTarget};
use analog_signature::filters::BiquadParams;
use analog_signature::obs::{Registry, SpanRecord, TraceTree};
use analog_signature::router::{RouterConfig, RouterHandle, RouterStore};
use analog_signature::serve::ServeConfig;

#[test]
fn routed_retest_campaign_yields_one_connected_span_tree_per_chunk() {
    const DEVICES: usize = 40;
    const CHUNK: usize = 16;
    let chunks = DEVICES.div_ceil(CHUNK);

    let setup = TestSetup::paper_default()
        .unwrap()
        .with_sample_rate(1e6)
        .unwrap()
        .with_noise(analog_signature::signal::NoiseModel::paper_default());
    let reference = BiquadParams::paper_default();
    let band = AcceptanceBand::new(0.03).unwrap();
    let policy = RetestPolicy::new(0.015, vec![4]).unwrap();
    let campaign = Campaign::new(
        setup.clone(),
        reference,
        DevicePopulation::MonteCarlo {
            devices: DEVICES,
            sigma_pct: 4.0,
        },
        band,
        3.0,
    )
    .unwrap()
    .with_seed(77);

    // The untraced reference: tracing off, no router — the report every
    // traced routed run below must reproduce bit-for-bit.
    let local = CampaignRunner::with_threads(2)
        .with_chunk_size(CHUNK)
        .with_tracing(false)
        .with_retest(policy.clone())
        .run(&campaign)
        .unwrap();
    let tracer = Registry::global().tracer().clone();
    assert!(
        tracer.drain().is_empty(),
        "an untraced run must not record a single span"
    );

    for backends in [1usize, 2] {
        let router = RouterHandle::spawn(
            backends,
            ServeConfig::default(),
            RouterStore::new(),
            RouterConfig {
                sub_batch: 7, // force sub-batch splits inside each chunk
                ..RouterConfig::default()
            },
        )
        .unwrap();
        router.characterize(&setup, &reference, band).unwrap();
        tracer.drain(); // discard anything recorded before this run

        let routed = CampaignRunner::with_threads(2)
            .with_chunk_size(CHUNK)
            .with_retest(policy.clone())
            .run_with_target(&campaign, ScoreTarget::Remote(&router))
            .unwrap();
        assert_eq!(
            routed, local,
            "tracing a routed run through {backends} backend(s) must not perturb the report"
        );

        // Every tier shares the process-global tracer here, so one drain
        // holds the engine, router and serve spans of the whole campaign.
        let spans = tracer.drain();
        let trees = TraceTree::build(&spans);
        assert_eq!(
            trees.len(),
            chunks,
            "expected one trace per chunk at {backends} backend(s)"
        );
        let mut total_forwards = 0usize;
        let mut total_shards = 0usize;
        for tree in &trees {
            assert_eq!(tree.orphan_count(), 0, "disconnected span in:\n{}", tree.render());
            assert_eq!(tree.root_count(), 1, "expected a single root in:\n{}", tree.render());
            let by_id: HashMap<u64, &SpanRecord> = tree.spans().iter().map(|s| (s.span_id, s)).collect();
            let root = tree.spans().iter().find(|s| s.parent_span == 0).unwrap();
            assert_eq!(root.name, "engine.chunk");
            assert_eq!(root.tier, "engine");
            for name in ["engine.capture", "engine.score", "engine.retest", "router.screen"] {
                assert!(
                    tree.spans().iter().any(|s| s.name == name),
                    "missing {name} span in:\n{}",
                    tree.render()
                );
            }
            for span in tree.spans() {
                let parent = by_id.get(&span.parent_span);
                match span.tier.as_str() {
                    // Serve spans always hang beneath the router's forwards.
                    "serve" => {
                        total_shards += usize::from(span.name == "serve.shard");
                        assert_eq!(
                            parent.expect("serve span has a parent").name,
                            "router.forward",
                            "serve span {} must parent under a router forward",
                            span.name
                        );
                    }
                    // Router spans hang beneath the engine or other router
                    // spans, never beneath the serving tier.
                    "router" => {
                        total_forwards += usize::from(span.name == "router.forward");
                        assert_ne!(parent.expect("router span has a parent").tier, "serve");
                    }
                    "engine" => {}
                    other => panic!("unexpected tier {other}"),
                }
            }
        }
        assert!(total_forwards > 0, "no router.forward spans at {backends} backend(s)");
        assert!(total_shards > 0, "no serve.shard spans at {backends} backend(s)");
    }
}
