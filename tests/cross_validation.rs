//! Cross-validation between the abstraction levels: analytic transfer
//! function, RK4 state-space model, Tow-Thomas op-amp netlist on the MNA
//! simulator, and behavioural vs transistor-level monitors.

use analog_signature::filters::{BiquadParams, StateSpaceSim, TowThomasDesign};
use analog_signature::monitor::{boundary_y_at, netlist, table1_comparators, Window};
use analog_signature::signal::{tone_amplitude_projection, MultitoneSpec, Waveform};
use analog_signature::spice::{ac_sweep, transient, SourceWaveform, Tone, TransientConfig};

#[test]
fn tow_thomas_ac_response_matches_analytic_across_the_band() {
    let params = BiquadParams::paper_default();
    let design = TowThomasDesign::from_params(&params).expect("design");
    let built = design
        .build_netlist(SourceWaveform::Sine {
            offset: 0.0,
            amplitude: 1.0,
            frequency_hz: 1e3,
            phase_rad: 0.0,
        })
        .expect("netlist");
    let freqs = analog_signature::spice::log_frequency_grid(100.0, 1e6, 25);
    let res = ac_sweep(&built.circuit, &freqs).expect("ac");
    for (i, &f) in freqs.iter().enumerate() {
        let circuit = res.phasor(i, built.lowpass).abs();
        let analytic = params.magnitude(f);
        assert!(
            (circuit - analytic).abs() <= 0.02 * analytic.max(1e-3),
            "at {f} Hz: circuit {circuit} vs analytic {analytic}"
        );
    }
}

#[test]
fn tow_thomas_transient_attenuates_tones_like_the_transfer_function() {
    // Drive the op-amp netlist with the paper's multitone stimulus and check
    // the per-tone amplitudes at the low-pass output against |H(jw)|.
    let params = BiquadParams::paper_default();
    let stimulus = MultitoneSpec::paper_default();
    let design = TowThomasDesign::from_params(&params).expect("design");
    let src = SourceWaveform::Multitone {
        offset: stimulus.offset(),
        tones: stimulus
            .tones()
            .iter()
            .map(|t| Tone {
                amplitude: t.amplitude,
                frequency_hz: stimulus.fundamental_hz() * t.harmonic as f64,
                phase_rad: t.phase_rad,
            })
            .collect(),
    };
    let built = design.build_netlist(src).expect("netlist");
    // Simulate 3 periods, keep the last one (settled).
    let period = stimulus.period();
    let config = TransientConfig::new(3.0 * period, period / 2000.0).with_record_from(2.0 * period);
    let result = transient(&built.circuit, &config).expect("transient");
    let (times, values) = result.sampled(built.lowpass);
    let out = Waveform::from_samples(&times, &values).expect("waveform");

    for tone in stimulus.tones() {
        let f = stimulus.fundamental_hz() * tone.harmonic as f64;
        let expected = tone.amplitude * params.magnitude(f);
        let measured = tone_amplitude_projection(&out, f).expect("spectrum");
        assert!(
            (measured - expected).abs() < 0.05 * expected + 0.01,
            "tone at {f} Hz: measured {measured} vs expected {expected}"
        );
    }
}

#[test]
fn rk4_and_analytic_agree_on_the_paper_stimulus() {
    let params = BiquadParams::paper_default();
    let stimulus = MultitoneSpec::paper_default();
    let sim = StateSpaceSim::new(params, 5e-8).expect("sim");
    let simulated = sim.simulate_multitone(&stimulus, 8, 1);
    let analytic = params.steady_state_response(&stimulus, 1, simulated.sample_rate());
    let n = analytic.len().min(simulated.len());
    let mut max_err = 0.0_f64;
    for k in 0..n {
        max_err = max_err.max((analytic.samples()[k] - simulated.samples()[k]).abs());
    }
    assert!(max_err < 0.01, "max deviation between RK4 and analytic: {max_err} V");
}

#[test]
fn behavioural_and_transistor_level_monitors_agree_on_boundaries() {
    let comparators = table1_comparators().expect("table 1");
    let window = Window::unit();
    // Check a few abscissas on two representative curves (one negative-slope
    // arc and the diagonal).
    for (idx, xs) in [(2usize, vec![0.35, 0.5, 0.6]), (5usize, vec![0.4, 0.6, 0.8])] {
        let m = &comparators[idx];
        for x in xs {
            let behavioural = boundary_y_at(m, x, &window).expect("behavioural boundary");
            let circuit = netlist::netlist_boundary_y_at(m, x, &window).expect("netlist boundary");
            assert!(
                (behavioural - circuit).abs() < 0.08,
                "curve {} at x = {x}: behavioural {behavioural} vs netlist {circuit}",
                idx + 1
            );
        }
    }
}

#[test]
fn filter_output_stays_inside_the_monitor_observation_window() {
    // The whole method relies on the Lissajous staying inside [0,1]x[0,1] V.
    let stimulus = MultitoneSpec::paper_default();
    for shift in [-20.0, -10.0, 0.0, 10.0, 20.0] {
        let params = BiquadParams::paper_default().with_f0_shift_pct(shift);
        let y = params.steady_state_response(&stimulus, 1, 1e6);
        assert!(
            y.min() >= 0.0 && y.max() <= 1.0,
            "shift {shift}%: range [{}, {}]",
            y.min(),
            y.max()
        );
    }
}
