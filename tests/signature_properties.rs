//! Property-based tests of the signature / NDF invariants.

use analog_signature::dsig::{capture_signature, ndf, CaptureClock, PointEncoder, Signature, SignatureEntry, ZoneCode};
use analog_signature::monitor::ZonePartition;
use analog_signature::signal::Waveform;
use proptest::prelude::*;

/// Arbitrary signatures: 1..12 entries with codes below 64 and durations in
/// (1 µs, 100 µs).
fn signature_strategy() -> impl Strategy<Value = Signature> {
    prop::collection::vec((0u32..64, 1e-6..100e-6_f64), 1..12).prop_map(|entries| {
        Signature::new(
            entries
                .into_iter()
                .map(|(c, d)| SignatureEntry {
                    code: ZoneCode(c),
                    duration: d,
                })
                .collect(),
        )
        .expect("valid entries")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ndf_of_a_signature_with_itself_is_zero(sig in signature_strategy()) {
        prop_assert!(ndf(&sig, &sig).expect("ndf") < 1e-12);
    }

    #[test]
    fn ndf_is_bounded_by_the_code_width(a in signature_strategy(), b in signature_strategy()) {
        // Codes are below 64, i.e. at most 6 bits differ at any instant.
        let value = ndf(&a, &b).expect("ndf");
        prop_assert!(value >= 0.0);
        prop_assert!(value <= 6.0 + 1e-12);
    }

    #[test]
    fn ndf_is_symmetric_when_durations_match(codes_a in prop::collection::vec(0u32..64, 1..10),
                                             codes_b in prop::collection::vec(0u32..64, 1..10)) {
        // Build two signatures over the same total duration with uniform
        // dwell times; Eq. (2) is then symmetric in its arguments.
        let total = 200e-6;
        let a = Signature::new(codes_a.iter().map(|&c| SignatureEntry {
            code: ZoneCode(c), duration: total / codes_a.len() as f64,
        }).collect()).expect("a");
        let b = Signature::new(codes_b.iter().map(|&c| SignatureEntry {
            code: ZoneCode(c), duration: total / codes_b.len() as f64,
        }).collect()).expect("b");
        let ab = ndf(&a, &b).expect("ndf");
        let ba = ndf(&b, &a).expect("ndf");
        prop_assert!((ab - ba).abs() < 1e-9, "ndf(a,b) = {ab}, ndf(b,a) = {ba}");
    }

    #[test]
    fn signature_total_duration_is_preserved_by_merging(entries in prop::collection::vec((0u32..8, 1e-6..10e-6_f64), 1..20)) {
        let expected: f64 = entries.iter().map(|e| e.1).sum();
        let sig = Signature::new(entries.into_iter().map(|(c, d)| SignatureEntry {
            code: ZoneCode(c), duration: d,
        }).collect()).expect("sig");
        prop_assert!((sig.total_duration() - expected).abs() < 1e-12);
        // Merging never produces two adjacent entries with the same code.
        for pair in sig.entries().windows(2) {
            prop_assert_ne!(pair[0].code, pair[1].code);
        }
    }

    #[test]
    fn quantization_never_exceeds_half_a_tick_per_entry(duration in 1e-7..1e-3_f64) {
        let clock = CaptureClock::new(10e6, 16).expect("clock");
        let q = clock.quantize(duration);
        prop_assert!((q - duration).abs() <= 0.5 * clock.tick() + 1e-15);
    }

    #[test]
    fn hamming_distance_is_a_metric_on_codes(a in 0u32..64, b in 0u32..64, c in 0u32..64) {
        let ab = ZoneCode(a).hamming_distance(ZoneCode(b));
        let ba = ZoneCode(b).hamming_distance(ZoneCode(a));
        let ac = ZoneCode(a).hamming_distance(ZoneCode(c));
        let cb = ZoneCode(c).hamming_distance(ZoneCode(b));
        prop_assert_eq!(ab, ba);
        prop_assert_eq!(ZoneCode(a).hamming_distance(ZoneCode(a)), 0);
        // Triangle inequality.
        prop_assert!(ab <= ac + cb);
    }
}

/// A deterministic helper encoder for capture properties.
struct Grid4x4;

impl PointEncoder for Grid4x4 {
    fn bits(&self) -> usize {
        4
    }
    fn encode(&self, x: f64, y: f64) -> u32 {
        let xi = ((x * 4.0).floor() as u32).min(3);
        let yi = ((y * 4.0).floor() as u32).min(3);
        xi | (yi << 2)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn capture_total_duration_equals_observation_window(freq in 1.0..8.0_f64, phase in 0.0..std::f64::consts::TAU) {
        let x = Waveform::from_fn(0.0, 1.0, 2000.0, |t| 0.5 + 0.45 * (2.0 * std::f64::consts::PI * freq * t + phase).sin());
        let y = Waveform::from_fn(0.0, 1.0, 2000.0, |t| 0.5 + 0.45 * (2.0 * std::f64::consts::PI * freq * t).cos());
        let sig = capture_signature(&Grid4x4, &x, &y, None).expect("capture");
        prop_assert!((sig.total_duration() - 1.0).abs() < 1e-9);
        prop_assert!(!sig.is_empty());
    }

    #[test]
    fn capture_is_deterministic(freq in 1.0..8.0_f64) {
        let x = Waveform::from_fn(0.0, 1.0, 1000.0, |t| 0.5 + 0.4 * (2.0 * std::f64::consts::PI * freq * t).sin());
        let y = Waveform::from_fn(0.0, 1.0, 1000.0, |t| 0.5 + 0.4 * (2.0 * std::f64::consts::PI * 2.0 * freq * t).sin());
        let a = capture_signature(&Grid4x4, &x, &y, None).expect("capture");
        let b = capture_signature(&Grid4x4, &x, &y, None).expect("capture");
        prop_assert_eq!(a, b);
    }
}

#[test]
fn paper_partition_codes_adjacent_zones_within_one_bit_along_the_lissajous() {
    // Walk the golden Lissajous trajectory finely: consecutive samples must
    // differ by at most one or two bits (two only if two boundaries are
    // crossed between samples), reproducing the zone-codification property
    // of §IV-B that justifies the Hamming metric.
    let partition = ZonePartition::paper_default().expect("partition");
    let stimulus = analog_signature::signal::MultitoneSpec::paper_default();
    let params = analog_signature::filters::BiquadParams::paper_default();
    let x = stimulus.sample(1, 5e6);
    let y = params.steady_state_response(&stimulus, 1, 5e6);
    let mut max_step = 0u32;
    let mut prev: Option<u32> = None;
    for (xs, ys) in x.samples().iter().zip(y.samples()) {
        let code = partition.zone_code(*xs, *ys);
        if let Some(p) = prev {
            max_step = max_step.max((code ^ p).count_ones());
        }
        prev = Some(code);
    }
    assert!(max_step <= 2, "adjacent Lissajous samples jumped {max_step} bits");
}
