//! Acceptance test of the serving layer: a Monte-Carlo production lot
//! screened through the TCP client must yield bit-identical `(ndf, outcome)`
//! results to direct campaign-engine (`TestFlow`) scoring, at shard counts 1
//! and 4, and a `GoldenStore` reloaded from disk must serve the same
//! decisions.

use std::sync::Arc;

use analog_signature::dsig::{AcceptanceBand, Signature, TestSetup};
use analog_signature::engine::{golden_fingerprint, Campaign, CampaignRunner, DevicePopulation};
use analog_signature::filters::BiquadParams;
use analog_signature::serve::{GoldenStore, ServeClient, ServeConfig, Server};

const DEVICES: usize = 1000;
const BATCH: usize = 100;

#[test]
fn loopback_screening_is_bit_identical_to_direct_scoring() {
    let setup = TestSetup::paper_default().unwrap().with_sample_rate(1e6).unwrap();
    let reference = BiquadParams::paper_default();
    let band = AcceptanceBand::new(0.03).unwrap();

    // The "tester" side: simulate the lot once, keeping every observed
    // signature. The report's per-device NDFs/outcomes are direct
    // TestFlow-based scoring.
    let campaign = Campaign::new(
        setup.clone(),
        reference,
        DevicePopulation::MonteCarlo {
            devices: DEVICES,
            sigma_pct: 3.0,
        },
        band,
        3.0,
    )
    .unwrap()
    .with_seed(77);
    let (report, log) = CampaignRunner::new().run_logged(&campaign).unwrap();
    assert_eq!(report.devices(), DEVICES);
    let signatures: Vec<Signature> = log.entries().iter().map(|(_, s)| s.clone()).collect();

    // The serving side: one characterized golden in a store.
    let store = Arc::new(GoldenStore::new());
    let key = store.characterize(&setup, &reference, band).unwrap();
    assert_eq!(key, golden_fingerprint(&setup, &reference));

    let screen_all = |server: &Server| -> Vec<analog_signature::serve::ScoreResult> {
        let mut client = ServeClient::connect(server.local_addr()).unwrap();
        let mut scores = Vec::with_capacity(signatures.len());
        for batch in signatures.chunks(BATCH) {
            scores.extend(client.screen(key, batch).unwrap());
        }
        scores
    };

    for shards in [1usize, 4] {
        let server = Server::bind("127.0.0.1:0", Arc::clone(&store), ServeConfig::with_shards(shards)).unwrap();
        let scores = screen_all(&server);
        assert_eq!(scores.len(), DEVICES);
        for (score, result) in scores.iter().zip(&report.results) {
            assert_eq!(
                score.ndf.to_bits(),
                result.ndf.to_bits(),
                "shards={shards} device={}: served NDF must be bit-identical",
                result.index
            );
            assert_eq!(
                score.outcome, result.outcome,
                "shards={shards} device={}: served outcome must match",
                result.index
            );
            assert_eq!(score.peak_hamming, result.peak_hamming);
        }
        assert_eq!(server.signatures_scored(), DEVICES as u64);
    }

    // Persistence: the store round-trips through disk and a server built on
    // the reloaded store makes identical decisions.
    let path = std::env::temp_dir().join(format!("serve-loopback-store-{}.bin", std::process::id()));
    store.save(&path).unwrap();
    let reloaded = Arc::new(GoldenStore::load(&path).unwrap());
    std::fs::remove_file(&path).ok();
    assert_eq!(reloaded.keys(), store.keys());
    assert_eq!(*reloaded.get(key).unwrap(), *store.get(key).unwrap());
    let server = Server::bind("127.0.0.1:0", reloaded, ServeConfig::with_shards(2)).unwrap();
    let scores = screen_all(&server);
    for (score, result) in scores.iter().zip(&report.results) {
        assert_eq!(
            score.ndf.to_bits(),
            result.ndf.to_bits(),
            "reloaded store must serve identical NDFs"
        );
        assert_eq!(score.outcome, result.outcome);
    }
}

#[test]
fn batch_characterization_serves_identical_goldens() {
    // A store populated through the batched characterization fast path must
    // be indistinguishable from one built reference-by-reference, and must
    // serve decisions bit-identical to direct TestFlow scoring.
    let setup = TestSetup::paper_default().unwrap().with_sample_rate(1e6).unwrap();
    let band = AcceptanceBand::new(0.03).unwrap();
    let references: Vec<BiquadParams> = [-5.0, 0.0, 5.0]
        .iter()
        .map(|&d| BiquadParams::paper_default().with_f0_shift_pct(d))
        .collect();

    let batch_store = Arc::new(GoldenStore::new());
    let keys = batch_store.characterize_batch(&setup, &references, band).unwrap();
    let single_store = GoldenStore::new();
    for reference in &references {
        single_store.characterize(&setup, reference, band).unwrap();
    }
    assert_eq!(batch_store.keys(), single_store.keys());
    for &key in &keys {
        assert_eq!(*batch_store.get(key).unwrap(), *single_store.get(key).unwrap());
    }

    // Screen a deviated device against the nominal golden over loopback and
    // compare with direct TestFlow scoring.
    let flow = analog_signature::dsig::TestFlow::new(setup.clone(), references[1]).unwrap();
    let cut = references[1].with_f0_shift_pct(8.0);
    let observed = setup.signature_of(&cut, 7).unwrap();
    let direct = flow.evaluate(&cut, 7).unwrap();
    let server = Server::bind("127.0.0.1:0", batch_store, ServeConfig::with_shards(2)).unwrap();
    let mut client = ServeClient::connect(server.local_addr()).unwrap();
    let score = client.screen_one(keys[1], &observed).unwrap();
    assert_eq!(score.ndf.to_bits(), direct.ndf.to_bits());
    assert_eq!(score.peak_hamming, direct.peak_hamming);
}

#[test]
fn in_process_handle_matches_tcp_path() {
    let setup = TestSetup::paper_default().unwrap().with_sample_rate(1e6).unwrap();
    let reference = BiquadParams::paper_default();
    let band = AcceptanceBand::new(0.03).unwrap();
    let store = Arc::new(GoldenStore::new());
    let key = store.characterize(&setup, &reference, band).unwrap();

    // A handful of devices across the deviation range.
    let observed: Vec<Signature> = [-10.0, -2.0, 0.0, 2.0, 10.0]
        .iter()
        .enumerate()
        .map(|(i, &dev)| {
            setup
                .signature_of(&reference.with_f0_shift_pct(dev), 100 + i as u64)
                .unwrap()
        })
        .collect();

    let server = Server::bind("127.0.0.1:0", store, ServeConfig::with_shards(3)).unwrap();
    let from_handle = server.handle().screen(key, &observed).unwrap();
    let mut client = ServeClient::connect(server.local_addr()).unwrap();
    let from_tcp = client.screen(key, &observed).unwrap();
    assert_eq!(from_handle, from_tcp, "TCP and in-process paths must agree exactly");
    // Nominal passes, ±10% fails with this band.
    assert_eq!(from_tcp[2].ndf, 0.0);
    assert!(from_tcp[0].ndf > 0.0 && from_tcp[4].ndf > 0.0);
}
