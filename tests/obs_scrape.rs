//! Acceptance test of the observability tier: scraping a live `RouterHandle`
//! fleet *while* a campaign screens through it must show counters moving and
//! stay monotonically consistent scrape-over-scrape — and the instrumentation
//! must be purely observational: the routed campaign report stays
//! bit-identical to an uninstrumented local run.

use std::sync::atomic::{AtomicBool, Ordering};

use analog_signature::dsig::{AcceptanceBand, TestSetup};
use analog_signature::engine::{Campaign, CampaignRunner, DevicePopulation, ScoreTarget};
use analog_signature::filters::BiquadParams;
use analog_signature::obs::MetricsSnapshot;
use analog_signature::router::{RouterConfig, RouterHandle, RouterStore};
use analog_signature::serve::ServeConfig;

/// Every counter and histogram count present in `before` must still be
/// present in `after`, no smaller: counters are monotone, and a scrape must
/// never observe one moving backwards. Checked through the snapshot diff
/// the operator tooling uses.
fn assert_monotonic(before: &MetricsSnapshot, after: &MetricsSnapshot) {
    let violations = after.diff(before).monotonicity_violations();
    assert!(violations.is_empty(), "scrape went backwards: {violations:?}");
}

/// Sums one per-backend counter across the fleet.
fn fleet_counter(snapshot: &MetricsSnapshot, backends: usize, what: &str) -> u64 {
    (0..backends)
        .map(|i| {
            snapshot
                .counter(&format!("router.backend.local-{i}.{what}"))
                .unwrap_or(0)
        })
        .sum()
}

#[test]
fn live_fleet_scrapes_move_and_leave_the_campaign_report_bit_identical() {
    const BACKENDS: usize = 3;
    let setup = TestSetup::paper_default().unwrap().with_sample_rate(1e6).unwrap();
    let reference = BiquadParams::paper_default();
    let band = AcceptanceBand::new(0.03).unwrap();
    let campaign = Campaign::new(
        setup.clone(),
        reference,
        DevicePopulation::MonteCarlo {
            devices: 150,
            sigma_pct: 3.0,
        },
        band,
        3.0,
    )
    .unwrap()
    .with_seed(4242);
    let runner = CampaignRunner::with_threads(2);
    // The uninstrumented reference: a plain local run, no router, no scrapes.
    let local = runner.run(&campaign).unwrap();

    let router = RouterHandle::spawn(
        BACKENDS,
        ServeConfig::default(),
        RouterStore::new(),
        RouterConfig {
            sub_batch: 37,
            ..RouterConfig::default()
        },
    )
    .unwrap();
    router.characterize(&setup, &reference, band).unwrap();

    let first = router.metrics();
    let done = AtomicBool::new(false);
    let (routed, scrapes) = std::thread::scope(|scope| {
        let campaign = &campaign;
        let runner = &runner;
        let router = &router;
        let done = &done;
        let worker = scope.spawn(move || {
            let report = runner.run_with_target(campaign, ScoreTarget::Remote(router));
            done.store(true, Ordering::Release);
            report
        });
        // Scrape the fleet while the campaign is screening through it. Each
        // scrape must be monotonically consistent with the previous one.
        let mut scrapes = 0usize;
        let mut previous = first.clone();
        while !done.load(Ordering::Acquire) {
            let next = router.metrics();
            assert_monotonic(&previous, &next);
            previous = next;
            scrapes += 1;
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        (worker.join().expect("campaign thread panicked").unwrap(), scrapes)
    });
    let last = router.metrics();
    assert_monotonic(&first, &last);
    assert!(scrapes >= 1, "the campaign finished before a single mid-run scrape");

    // The counters moved: the campaign's screening traffic is visible.
    let forwards = fleet_counter(&last, BACKENDS, "forwards") - fleet_counter(&first, BACKENDS, "forwards");
    assert!(
        forwards >= 2,
        "expected the routed campaign to forward batches, saw {forwards}"
    );
    let fanout = last
        .histogram("router.fanout_us")
        .expect("fan-out histogram must exist");
    assert!(fanout.count >= first.histogram("router.fanout_us").map_or(0, |h| h.count) + 2);

    // And none of it touched the data path: bit-identical verdicts.
    assert_eq!(
        routed, local,
        "scraping a live fleet mid-campaign must not perturb the report"
    );
}
