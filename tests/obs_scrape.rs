//! Acceptance test of the observability tier: scraping a live `RouterHandle`
//! fleet *while* a campaign screens through it must show counters moving and
//! stay monotonically consistent scrape-over-scrape — and the instrumentation
//! must be purely observational: the routed campaign report stays
//! bit-identical to an uninstrumented local run.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use analog_signature::dsig::{AcceptanceBand, TestSetup};
use analog_signature::engine::{Campaign, CampaignRunner, DevicePopulation, ScoreTarget};
use analog_signature::filters::BiquadParams;
use analog_signature::obs::{HealthStatus, MetricsSnapshot, Registry};
use analog_signature::router::{Backend, RouterConfig, RouterHandle, RouterStore};
use analog_signature::serve::{GoldenStore, ServeConfig, ServeHandle};

/// Every counter and histogram count present in `before` must still be
/// present in `after`, no smaller: counters are monotone, and a scrape must
/// never observe one moving backwards. Checked through the snapshot diff
/// the operator tooling uses.
fn assert_monotonic(before: &MetricsSnapshot, after: &MetricsSnapshot) {
    let violations = after.diff(before).monotonicity_violations();
    assert!(violations.is_empty(), "scrape went backwards: {violations:?}");
}

/// Sums one per-backend counter across the fleet.
fn fleet_counter(snapshot: &MetricsSnapshot, backends: usize, what: &str) -> u64 {
    (0..backends)
        .map(|i| {
            snapshot
                .counter(&format!("router.backend.local-{i}.{what}"))
                .unwrap_or(0)
        })
        .sum()
}

#[test]
fn live_fleet_scrapes_move_and_leave_the_campaign_report_bit_identical() {
    const BACKENDS: usize = 3;
    let setup = TestSetup::paper_default().unwrap().with_sample_rate(1e6).unwrap();
    let reference = BiquadParams::paper_default();
    let band = AcceptanceBand::new(0.03).unwrap();
    let campaign = Campaign::new(
        setup.clone(),
        reference,
        DevicePopulation::MonteCarlo {
            devices: 150,
            sigma_pct: 3.0,
        },
        band,
        3.0,
    )
    .unwrap()
    .with_seed(4242);
    let runner = CampaignRunner::with_threads(2);
    // The uninstrumented reference: a plain local run, no router, no scrapes.
    let local = runner.run(&campaign).unwrap();

    let router = RouterHandle::spawn(
        BACKENDS,
        ServeConfig::default(),
        RouterStore::new(),
        RouterConfig {
            sub_batch: 37,
            ..RouterConfig::default()
        },
    )
    .unwrap();
    router.characterize(&setup, &reference, band).unwrap();

    let first = router.metrics();
    let done = AtomicBool::new(false);
    let (routed, scrapes) = std::thread::scope(|scope| {
        let campaign = &campaign;
        let runner = &runner;
        let router = &router;
        let done = &done;
        let worker = scope.spawn(move || {
            let report = runner.run_with_target(campaign, ScoreTarget::Remote(router));
            done.store(true, Ordering::Release);
            report
        });
        // Scrape the fleet while the campaign is screening through it. Each
        // scrape must be monotonically consistent with the previous one.
        let mut scrapes = 0usize;
        let mut previous = first.clone();
        while !done.load(Ordering::Acquire) {
            let next = router.metrics();
            assert_monotonic(&previous, &next);
            previous = next;
            scrapes += 1;
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        (worker.join().expect("campaign thread panicked").unwrap(), scrapes)
    });
    let last = router.metrics();
    assert_monotonic(&first, &last);
    assert!(scrapes >= 1, "the campaign finished before a single mid-run scrape");

    // The counters moved: the campaign's screening traffic is visible.
    let forwards = fleet_counter(&last, BACKENDS, "forwards") - fleet_counter(&first, BACKENDS, "forwards");
    assert!(
        forwards >= 2,
        "expected the routed campaign to forward batches, saw {forwards}"
    );
    let fanout = last
        .histogram("router.fanout_us")
        .expect("fan-out histogram must exist");
    assert!(fanout.count >= first.histogram("router.fanout_us").map_or(0, |h| h.count) + 2);

    // And none of it touched the data path: bit-identical verdicts.
    assert_eq!(
        routed, local,
        "scraping a live fleet mid-campaign must not perturb the report"
    );
}

#[test]
fn one_fleet_scrape_carries_prefixes_and_rollups_and_health_flips_on_kills() {
    const BACKENDS: usize = 3;
    let setup = TestSetup::paper_default().unwrap().with_sample_rate(1e6).unwrap();
    let reference = BiquadParams::paper_default();
    let band = AcceptanceBand::new(0.03).unwrap();
    // Per-backend registries: each backend's `DSMX` answer carries only its
    // own counters, so the fleet scrape's prefixes and rollup are exactly
    // checkable (with the process-global registry every backend would
    // answer the same blurred snapshot).
    let fleet: Vec<Backend> = (0..BACKENDS)
        .map(|id| {
            Backend::local(
                id as u64,
                ServeHandle::spawn_in(Arc::new(GoldenStore::new()), ServeConfig::default(), Registry::new()),
            )
        })
        .collect();
    let router = RouterHandle::with_backends(fleet, RouterStore::new(), RouterConfig::default()).unwrap();
    let key = router.characterize(&setup, &reference, band).unwrap();
    let golden = router.golden(key).unwrap().golden.clone();
    // A batch bigger than the sub-batch size spreads over the whole fleet,
    // so every backend's scored counter moves.
    let batch: Vec<_> = std::iter::repeat_with(|| golden.clone()).take(8 * BACKENDS).collect();
    router.screen(key, &batch).unwrap();

    // ONE fleet scrape answers for everything: per-backend prefixed copies,
    // a cross-backend rollup, and the router's own unprefixed metrics.
    let scrape = router.fleet_metrics();
    let per_backend: Vec<u64> = (0..BACKENDS)
        .map(|i| {
            scrape
                .counter(&format!("backend.local-{i}.serve.signatures_scored"))
                .unwrap_or_else(|| panic!("backend local-{i} missing from the fleet scrape"))
        })
        .collect();
    let total: u64 = per_backend.iter().sum();
    // A single key routes to its owner, so the batch lands on one backend —
    // but every backend answers the scrape, and the rollup is the exact sum.
    assert!(
        total >= batch.len() as u64,
        "the screening load is invisible: {scrape:?}"
    );
    assert_eq!(
        scrape.counter("fleet.serve.signatures_scored"),
        Some(total),
        "the fleet rollup must be the exact cross-backend sum"
    );
    assert!(
        scrape.histogram("router.fanout_us").is_some(),
        "the router's own metrics ride the scrape unprefixed"
    );
    // The merged scrape is still a legal DSMS body (sorted unique names).
    assert_eq!(MetricsSnapshot::from_bytes(&scrape.to_bytes()).unwrap(), scrape);

    // The windowed health verdict tracks fleet state: PASS with everyone
    // up, DEGRADED after one kill, FAIL when nothing is left, and back to
    // PASS once the operator revives the fleet.
    assert_eq!(router.health().status, HealthStatus::Pass);
    router.kill("local-0").unwrap();
    let degraded = router.health();
    assert_eq!(degraded.status, HealthStatus::Degraded, "{degraded:?}");
    assert_eq!((degraded.backed_off, degraded.backends), (1, BACKENDS as u32));
    assert!(!degraded.findings.is_empty());
    for index in 1..BACKENDS {
        router.kill(&format!("local-{index}")).unwrap();
    }
    assert_eq!(router.health().status, HealthStatus::Fail);
    for label in router.backend_labels() {
        router.revive(&label).unwrap();
    }
    assert_eq!(router.health().status, HealthStatus::Pass);
}
