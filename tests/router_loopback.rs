//! Acceptance test of the routing tier: a Monte-Carlo production lot
//! screened through a router must yield bit-identical `(ndf, outcome,
//! peak_hamming)` results to direct campaign-engine (`TestFlow`) scoring at
//! backend counts 1, 2 and 4 — and keep doing so, with zero wrong verdicts,
//! after one backend is killed mid-lot, and through a full **rolling
//! restart** (kill the owner, admin-join a fresh standby, remove the dead
//! member) at backend counts 2, 4 and 8. A campaign scoring through the
//! router as its `ScoreTarget` must reproduce the local report exactly.

use std::sync::{Arc, OnceLock};

use analog_signature::dsig::{AcceptanceBand, Signature, TestSetup};
use analog_signature::engine::{Campaign, CampaignReport, CampaignRunner, DevicePopulation, ScoreTarget};
use analog_signature::filters::BiquadParams;
use analog_signature::router::{Backend, RouterConfig, RouterHandle, RouterStore};
use analog_signature::serve::{GoldenStore, ServeConfig, ServeHandle};

const DEVICES: usize = 1000;
/// Client-side batch size; deliberately coprime with the router's sub-batch
/// so every split boundary is exercised.
const BATCH: usize = 64;

struct Lot {
    setup: TestSetup,
    reference: BiquadParams,
    band: AcceptanceBand,
    report: CampaignReport,
    signatures: Vec<Signature>,
}

/// Simulates the lot once for every test in this file: the campaign report's
/// per-device scores *are* direct `TestFlow` scoring.
fn lot() -> &'static Lot {
    static LOT: OnceLock<Lot> = OnceLock::new();
    LOT.get_or_init(|| {
        let setup = TestSetup::paper_default().unwrap().with_sample_rate(1e6).unwrap();
        let reference = BiquadParams::paper_default();
        let band = AcceptanceBand::new(0.03).unwrap();
        let campaign = Campaign::new(
            setup.clone(),
            reference,
            DevicePopulation::MonteCarlo {
                devices: DEVICES,
                sigma_pct: 3.0,
            },
            band,
            3.0,
        )
        .unwrap()
        .with_seed(77);
        let (report, log) = CampaignRunner::new().run_logged(&campaign).unwrap();
        assert_eq!(report.devices(), DEVICES);
        Lot {
            setup,
            reference,
            band,
            report,
            signatures: log.entries().iter().map(|(_, s)| s.clone()).collect(),
        }
    })
}

fn router_with(backends: usize, sub_batch: usize) -> (RouterHandle, u64) {
    let lot = lot();
    let router = RouterHandle::spawn(
        backends,
        ServeConfig::default(),
        RouterStore::new(),
        RouterConfig {
            sub_batch,
            ..RouterConfig::default()
        },
    )
    .unwrap();
    let key = router.characterize(&lot.setup, &lot.reference, lot.band).unwrap();
    (router, key)
}

fn assert_scores_match(
    scores: &[analog_signature::serve::ScoreResult],
    results: &[analog_signature::engine::DeviceResult],
    what: &str,
) {
    assert_eq!(scores.len(), results.len());
    for (score, result) in scores.iter().zip(results) {
        assert_eq!(
            score.ndf.to_bits(),
            result.ndf.to_bits(),
            "{what} device={}: routed NDF must be bit-identical",
            result.index
        );
        assert_eq!(
            score.outcome, result.outcome,
            "{what} device={}: routed outcome must match",
            result.index
        );
        assert_eq!(
            score.peak_hamming, result.peak_hamming,
            "{what} device={}",
            result.index
        );
    }
}

#[test]
fn routed_screening_is_bit_identical_at_every_backend_count() {
    let lot = lot();
    // Sub-batch 97 is coprime with the client batch of 64, so chunk
    // boundaries land everywhere across the lot.
    for backends in [1usize, 2, 4] {
        let (router, key) = router_with(backends, 97);
        let mut scores = Vec::with_capacity(DEVICES);
        for batch in lot.signatures.chunks(BATCH) {
            scores.extend(router.screen(key, batch).unwrap());
        }
        assert_scores_match(&scores, &lot.report.results, &format!("backends={backends}"));
    }
}

#[test]
fn routed_screening_survives_a_killed_backend_with_zero_wrong_verdicts() {
    let lot = lot();
    let (router, key) = router_with(4, 97);
    let owner = router.rank_labels(key)[0].clone();

    // First half of the lot with the full fleet...
    let half = DEVICES / 2;
    let mut scores = Vec::with_capacity(DEVICES);
    for batch in lot.signatures[..half].chunks(BATCH) {
        scores.extend(router.screen(key, batch).unwrap());
    }
    // ...then the owner dies mid-lot and the rest fails over to the replica
    // chain (refreshing the golden from the router store if it has to).
    router.kill(&owner).unwrap();
    for batch in lot.signatures[half..].chunks(BATCH) {
        scores.extend(router.screen(key, batch).unwrap());
    }
    assert_scores_match(&scores, &lot.report.results, "killed-owner");
    assert!(
        router.backend_is_down(&owner).unwrap(),
        "the killed owner must be marked down by the health record"
    );

    // The multi-golden path takes the same failover chain: interleave the
    // first devices as (key, signature) items.
    let items: Vec<(u64, Signature)> = lot.signatures[..100].iter().map(|s| (key, s.clone())).collect();
    let multi = router.screen_multi(&items).unwrap();
    assert_scores_match(&multi, &lot.report.results[..100], "killed-owner multi");
}

#[test]
fn rolling_restart_mid_lot_keeps_every_verdict_at_all_fleet_sizes() {
    let lot = lot();
    for backends in [2usize, 4, 8] {
        let (router, key) = router_with(backends, 97);
        let what = format!("rolling-restart backends={backends}");
        let third = DEVICES / 3;
        let mut scores = Vec::with_capacity(DEVICES);

        // Phase 1: the original fleet screens the first third of the lot.
        for batch in lot.signatures[..third].chunks(BATCH) {
            scores.extend(router.screen(key, batch).unwrap());
        }

        // Phase 2: the owner dies and a cold standby joins mid-lot — no
        // operator data shuffling: the join migrates the goldens the
        // newcomer owns before it enters the rotation.
        let owner = router.rank_labels(key)[0].clone();
        router.kill(&owner).unwrap();
        let epoch_before = router.epoch();
        let standby_id = 100 + backends as u64;
        let roster = router
            .join(Backend::local(
                standby_id,
                ServeHandle::spawn(Arc::new(GoldenStore::new()), ServeConfig::default()),
            ))
            .unwrap();
        assert_eq!(roster.epoch, epoch_before + 1, "{what}: join must bump the epoch");
        assert_eq!(roster.entries.len(), backends + 1);
        for batch in lot.signatures[third..2 * third].chunks(BATCH) {
            scores.extend(router.screen(key, batch).unwrap());
        }

        // Phase 3: the dead member is removed from the fleet outright; the
        // rest of the lot screens on the reshaped fleet.
        let roster = router.fleet_leave(&owner).unwrap();
        assert_eq!(roster.epoch, epoch_before + 2, "{what}: leave must bump the epoch");
        assert!(roster.entries.iter().all(|entry| entry.label != owner));
        for batch in lot.signatures[2 * third..].chunks(BATCH) {
            scores.extend(router.screen(key, batch).unwrap());
        }

        // Zero wrong verdicts across the kill, the join and the leave.
        assert_scores_match(&scores, &lot.report.results, &what);
        // The health report carries the final epoch, and the standby is a
        // full member: if it now owns the golden, it answers without help.
        assert_eq!(router.health().epoch, epoch_before + 2, "{what}");
        assert_eq!(router.backend_count(), backends);
        let standby = format!("local-{standby_id}");
        assert!(router.backend_labels().contains(&standby), "{what}");
    }
}

#[test]
fn campaign_scores_through_the_router_target_bit_identically() {
    let lot = lot();
    let (router, _key) = router_with(3, 256);
    let campaign = Campaign::new(
        lot.setup.clone(),
        lot.reference,
        DevicePopulation::MonteCarlo {
            devices: 200,
            sigma_pct: 3.0,
        },
        lot.band,
        3.0,
    )
    .unwrap()
    .with_seed(2026);
    let runner = CampaignRunner::with_threads(4);
    let local = runner.run(&campaign).unwrap();
    let routed = runner.run_with_target(&campaign, ScoreTarget::Remote(&router)).unwrap();
    assert_eq!(
        routed, local,
        "a campaign scored through the router must reproduce the local report exactly"
    );
}
